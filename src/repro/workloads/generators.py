"""Raw RDMA verb workload generators (paper Figures 1(b), 3(a), 3(b)).

These drive the verb layer directly — no RPC — reproducing the paper's
motivation experiments: 10 server threads posting 32-byte outbound writes
to a growing set of clients, or clients posting inbound writes into
per-client message-block regions that server threads consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from ..core.msgpool import BlockCursor
from ..memsys import CounterMonitor
from ..rdma import Access, Fabric, Node, NicParams, Transport, post_recv, post_send, post_write
from ..sim import NS_PER_S, Simulator, Store

__all__ = ["RawVerbConfig", "RawVerbResult", "run_outbound_write", "run_inbound_write", "run_ud_send"]


@dataclass
class RawVerbConfig:
    """One raw-verb experiment (paper Section 2.2 methodology)."""

    n_clients: int = 40
    n_client_machines: int = 11
    n_server_threads: int = 10
    message_bytes: int = 32
    block_size: int = 4096
    blocks_per_client: int = 20
    outstanding_per_thread: int = 8
    # Inbound experiments need pools to wrap (blocks_per_client messages
    # per client) before the cache steady state is representative.
    warmup_ns: int = 200_000
    measure_ns: int = 1_000_000
    #: Override the server NIC model (e.g. a newer HCA's larger caches).
    server_nic_params: Optional[NicParams] = None


@dataclass
class RawVerbResult:
    """Throughput plus the PCM counters the paper plots alongside."""

    throughput_mops: float
    pcie_rd_cur_mops: float
    pcie_itom_mops: float
    l3_miss_rate: float
    completed: int


def _cluster(config: RawVerbConfig):
    sim = Simulator()
    fabric = Fabric(sim)
    server = Node(sim, "server", fabric, nic_params=config.server_nic_params)
    machines = [Node(sim, f"m{i}", fabric) for i in range(config.n_client_machines)]
    return sim, fabric, server, machines


def _measure(sim, server, config, counter) -> RawVerbResult:
    monitor = CounterMonitor(sim, server.counters, server.llc)
    sim.run(until=config.warmup_ns)
    start_count = counter["ops"]
    monitor.start()
    sim.run(until=config.warmup_ns + config.measure_ns)
    rates = monitor.stop()
    completed = counter["ops"] - start_count
    return RawVerbResult(
        throughput_mops=completed * NS_PER_S / config.measure_ns / 1e6,
        pcie_rd_cur_mops=rates.pcie_rd_cur_per_s / 1e6,
        pcie_itom_mops=rates.pcie_itom_per_s / 1e6,
        l3_miss_rate=rates.l3_miss_rate,
        completed=completed,
    )


def run_outbound_write(config: RawVerbConfig) -> RawVerbResult:
    """Server threads RC-write to a growing set of clients (Fig 1(b)/3(a)
    outbound): the NIC connection caches are the limiter."""
    sim, fabric, server, machines = _cluster(config)
    source = server.register_memory(1 << 20)
    targets = []
    for index in range(config.n_clients):
        machine = machines[index % len(machines)]
        region = machine.register_memory(
            config.block_size, access=Access.all_remote(), huge_pages=False
        )
        server_qp = server.create_qp(Transport.RC)
        client_qp = machine.create_qp(Transport.RC)
        server_qp.connect(client_qp)
        targets.append((server_qp, region.range.base))
    counter = {"ops": 0}

    def thread(sim, thread_index):
        cursor = thread_index
        window = config.outstanding_per_thread
        while True:
            # Post a window of unsignaled writes, then one signaled write
            # whose completion paces the loop (standard doorbell batching).
            for _ in range(window - 1):
                qp, addr = targets[cursor % len(targets)]
                cursor += config.n_server_threads
                post_write(qp, source.range.base, addr, config.message_bytes, signaled=False)
            qp, addr = targets[cursor % len(targets)]
            cursor += config.n_server_threads
            wr = post_write(qp, source.range.base, addr, config.message_bytes)
            yield wr.completion
            counter["ops"] += window

    for t in range(config.n_server_threads):
        sim.process(thread(sim, t), name=f"out.{t}")
    return _measure(sim, server, config, counter)


def run_inbound_write(config: RawVerbConfig) -> RawVerbResult:
    """Clients RC-write into per-client block regions on the server while
    server threads consume the messages (Fig 1(b)/3(a)/3(b) inbound):
    DDIO/LLC behaviour is the limiter."""
    sim, fabric, server, machines = _cluster(config)
    stores = [Store(sim) for _ in range(config.n_server_threads)]
    region_of = {}
    for index in range(config.n_clients):
        machine = machines[index % len(machines)]
        region = server.register_memory(
            config.block_size * config.blocks_per_client,
            access=Access.all_remote(),
            huge_pages=False,
        )
        client_qp = machine.create_qp(Transport.RC)
        server_qp = server.create_qp(Transport.RC)
        client_qp.connect(server_qp)
        region_of[index] = (machine, client_qp, region)
        server.watch_writes(
            region.range,
            lambda event, idx=index: stores[idx % config.n_server_threads].put(event),
        )
    counter = {"ops": 0}

    def client(sim, index):
        machine, qp, region = region_of[index]
        staging = machine.register_memory(4096)
        cursor = BlockCursor(region.range.base, config.block_size, config.blocks_per_client)
        window = 4
        while True:
            for _ in range(window - 1):
                post_write(qp, staging.range.base,
                           cursor.next(config.message_bytes), config.message_bytes,
                           signaled=False)
            wr = post_write(qp, staging.range.base,
                            cursor.next(config.message_bytes), config.message_bytes)
            yield wr.completion

    def consumer(sim, thread_index):
        store = stores[thread_index]
        while True:
            event = yield store.get()
            access = server.llc.cpu_access(event.addr, event.size)
            yield sim.timeout(access.cost_ns + 50)
            counter["ops"] += 1

    for index in range(config.n_clients):
        sim.process(client(sim, index), name=f"in.c{index}")
    for t in range(config.n_server_threads):
        sim.process(consumer(sim, t), name=f"in.s{t}")
    return _measure(sim, server, config, counter)


def run_ud_send(config: RawVerbConfig) -> RawVerbResult:
    """Server threads UD-send outbound to a growing set of clients
    (Fig 1(b) UD send): flat, because a UD QP carries no per-destination
    state — the paper's motivation for UD-based RPC designs."""
    sim, fabric, server, machines = _cluster(config)
    counter = {"ops": 0}
    source = server.register_memory(1 << 20)
    destinations = []
    for index in range(config.n_clients):
        machine = machines[index % len(machines)]
        qp = machine.create_qp(Transport.UD, max_recv_wr=1024)
        ring = machine.register_memory(256 * 64, huge_pages=False)
        for i in range(256):
            post_recv(qp, ring.range.base + i * 64, 64)
        destinations.append(qp.address_handle())

        def drain(sim, qp=qp, ring=ring):
            slot = 0
            while True:
                yield qp.recv_cq.get_event()
                post_recv(qp, ring.range.base + slot * 64, 64)
                slot = (slot + 1) % 256

        sim.process(drain(sim), name=f"ud.drain{index}")
    ud_qps = [server.create_qp(Transport.UD) for _ in range(config.n_server_threads)]

    def thread(sim, thread_index):
        qp = ud_qps[thread_index]
        cursor = thread_index
        window = config.outstanding_per_thread
        while True:
            for _ in range(window - 1):
                post_send(qp, config.message_bytes, local_addr=source.range.base,
                          dest=destinations[cursor % len(destinations)], signaled=False)
                cursor += config.n_server_threads
            wr = post_send(qp, config.message_bytes, local_addr=source.range.base,
                           dest=destinations[cursor % len(destinations)])
            cursor += config.n_server_threads
            yield wr.completion
            counter["ops"] += window

    for t in range(config.n_server_threads):
        sim.process(thread(sim, t), name=f"ud.s{t}")
    return _measure(sim, server, config, counter)
