"""Large-message transfer strategies (paper Section 5.1).

The paper motivates choosing RC partly with a measurement from its own
prototype: transferring data larger than the 4 KB UD MTU requires cutting
it into ordered 4 KB slices with per-slice acknowledgment, which reached
only 0.8 GB/s single-threaded — 12.5% of the RC bandwidth — unless a more
complex pipelined scheme is built.  This module implements all three
strategies over the simulated fabric:

- :func:`rc_single_write`   — one RC write (MTU 2 GB),
- :func:`ud_ordered_chunks` — stop-and-wait 4 KB UD slices with acks,
- :func:`ud_pipelined_chunks` — the windowed variant the paper says
  recovers bandwidth at the price of software complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..rdma import (
    Access,
    Fabric,
    Node,
    Transport,
    post_recv,
    post_send,
    post_write,
)
from ..rdma.types import max_message_size
from ..sim import NS_PER_S, Simulator

__all__ = [
    "TransferResult",
    "rc_single_write",
    "ud_ordered_chunks",
    "ud_pipelined_chunks",
    "run_transfer_comparison",
]

UD_CHUNK = 4096


@dataclass(frozen=True)
class TransferResult:
    """One completed transfer."""

    strategy: str
    total_bytes: int
    elapsed_ns: int
    messages: int

    @property
    def gbytes_per_s(self) -> float:
        return self.total_bytes / max(self.elapsed_ns, 1)  # bytes/ns == GB/s


def rc_single_write(sim: Simulator, sender: Node, receiver: Node,
                    qp, dst_addr: int, src_addr: int, total_bytes: int) -> Generator:
    """One RC write carries the whole payload (RC MTU is 2 GB)."""
    if total_bytes > max_message_size(Transport.RC):
        raise ValueError("payload exceeds even the RC MTU")
    start = sim.now
    wr = post_write(qp, src_addr, dst_addr, total_bytes, payload=("bulk", total_bytes))
    yield wr.completion
    return TransferResult("rc_single_write", total_bytes, sim.now - start, 1)


def ud_ordered_chunks(sim: Simulator, sender_qp, receiver_qp, receiver_node: Node,
                      ack_qp, src_addr: int, recv_base: int,
                      total_bytes: int) -> Generator:
    """Stop-and-wait: send a 4 KB slice, wait for the receiver's ack.

    This is the paper's "ordered transferring" strawman: correct and
    simple, but each slice pays a full round trip.
    """
    start = sim.now
    sent = 0
    chunk_index = 0
    n_chunks = -(-total_bytes // UD_CHUNK)
    ack_ring = sender_qp.node.register_memory(64 * 64, huge_pages=False)
    for i in range(64):
        post_recv(sender_qp, ack_ring.range.base + (i % 64) * 64, 64)
    while sent < total_bytes:
        size = min(UD_CHUNK, total_bytes - sent)
        wr = post_send(
            sender_qp, size, payload=("chunk", chunk_index),
            local_addr=src_addr, dest=receiver_qp.address_handle(),
        )
        yield wr.completion
        # Receiver-side: consume and acknowledge.
        completion = yield receiver_qp.recv_cq.get_event()
        post_recv(receiver_qp, recv_base, UD_CHUNK)
        receiver_node.llc.cpu_access(completion.addr or recv_base, size)
        ack = post_send(
            ack_qp, 16, payload=("ack", chunk_index),
            dest=sender_qp.address_handle(),
        )
        yield ack.completion
        ack_completion = yield sender_qp.recv_cq.get_event()
        post_recv(sender_qp, ack_ring.range.base, 64)
        sent += size
        chunk_index += 1
    return TransferResult("ud_ordered_chunks", total_bytes, sim.now - start, 2 * n_chunks)


def ud_pipelined_chunks(sim: Simulator, sender_qp, receiver_qp, receiver_node: Node,
                        ack_qp, src_addr: int, recv_base: int,
                        total_bytes: int, window: int = 16) -> Generator:
    """Windowed slicing: keep ``window`` slices in flight, ack per slice.

    The paper notes pipelining recovers throughput but "inevitably causes
    increased complexity in the software" — visible below.
    """
    start = sim.now
    n_chunks = -(-total_bytes // UD_CHUNK)
    state = {"acked": 0, "sent": 0}
    ack_ring = sender_qp.node.register_memory(64 * 64, huge_pages=False)
    for i in range(64):
        post_recv(sender_qp, ack_ring.range.base + (i % 64) * 64, 64)

    def receiver_loop(sim):
        received = 0
        while received < n_chunks:
            completion = yield receiver_qp.recv_cq.get_event()
            post_recv(receiver_qp, recv_base, UD_CHUNK)
            receiver_node.llc.cpu_access(completion.addr or recv_base, completion.byte_len)
            post_send(ack_qp, 16, payload=("ack", received),
                      dest=sender_qp.address_handle(), signaled=False)
            received += 1

    receiver_proc = sim.process(receiver_loop(sim), name="xfer.rx")
    while state["acked"] < n_chunks:
        while (
            state["sent"] < n_chunks
            and state["sent"] - state["acked"] < window
        ):
            offset = state["sent"] * UD_CHUNK
            size = min(UD_CHUNK, total_bytes - offset)
            post_send(sender_qp, size, payload=("chunk", state["sent"]),
                      local_addr=src_addr, dest=receiver_qp.address_handle(),
                      signaled=False)
            state["sent"] += 1
        yield sender_qp.recv_cq.get_event()  # one ack
        post_recv(sender_qp, ack_ring.range.base, 64)
        state["acked"] += 1
    yield receiver_proc
    return TransferResult("ud_pipelined_chunks", total_bytes, sim.now - start, 2 * n_chunks)


def run_transfer_comparison(total_bytes: int = 8 << 20, window: int = 16) -> dict[str, TransferResult]:
    """Run all three strategies over identical fabrics; returns results."""
    results: dict[str, TransferResult] = {}

    # RC
    sim = Simulator()
    fabric = Fabric(sim)
    sender = Node(sim, "tx", fabric)
    receiver = Node(sim, "rx", fabric)
    qp_s = sender.create_qp(Transport.RC)
    qp_r = receiver.create_qp(Transport.RC)
    qp_s.connect(qp_r)
    src = sender.register_memory(total_bytes)
    dst = receiver.register_memory(total_bytes)

    def rc_driver(sim):
        result = yield from rc_single_write(
            sim, sender, receiver, qp_s, dst.range.base, src.range.base, total_bytes
        )
        results["rc"] = result

    sim.process(rc_driver(sim))
    sim.run()

    # UD variants share a builder.
    def build_ud():
        sim = Simulator()
        fabric = Fabric(sim)
        sender = Node(sim, "tx", fabric)
        receiver = Node(sim, "rx", fabric)
        sender_qp = sender.create_qp(Transport.UD, max_recv_wr=256)
        receiver_qp = receiver.create_qp(Transport.UD, max_recv_wr=2 * window + 64)
        ack_qp = receiver.create_qp(Transport.UD)
        src = sender.register_memory(total_bytes)
        recv_buf = receiver.register_memory(64 * UD_CHUNK, access=Access.all_remote(),
                                            huge_pages=False)
        for i in range(2 * window + 16):
            post_recv(receiver_qp, recv_buf.range.base + (i % 32) * UD_CHUNK, UD_CHUNK)
        return sim, sender, receiver, sender_qp, receiver_qp, ack_qp, src, recv_buf

    sim, sender, receiver, sqp, rqp, aqp, src, recv_buf = build_ud()

    def stop_and_wait(sim):
        result = yield from ud_ordered_chunks(
            sim, sqp, rqp, receiver, aqp, src.range.base, recv_buf.range.base, total_bytes
        )
        results["ud"] = result

    sim.process(stop_and_wait(sim))
    sim.run()

    sim, sender, receiver, sqp, rqp, aqp, src, recv_buf = build_ud()

    def pipelined(sim):
        result = yield from ud_pipelined_chunks(
            sim, sqp, rqp, receiver, aqp, src.range.base, recv_buf.range.base,
            total_bytes, window=window,
        )
        results["ud_pipelined"] = result

    sim.process(pipelined(sim))
    sim.run()
    return results
