"""Tests for flowlint's interprocedural layer (the "deeplint" passes).

Three modules under test: the module-resolution call graph
(``flowlint.callgraph``), the bottom-up summaries that ride on it
(``flowlint.summaries``), and the resource-typestate engine
(``flowlint.typestate``).  The typestate fixtures are written as tiny
on-disk trees shaped like the real repository (``<tmp>/src/repro/<scope>/``)
because the protocols are path-scoped: each new rule gets a seeded
positive *and* the nearby safe shape it must not flag (finally-release,
release-via-helper, container ownership transfer, constructor wrap).
"""

import ast
import json
import textwrap

from repro.analysis.flowlint import lint_paths, main
from repro.analysis.flowlint.callgraph import build_callgraph, module_name
from repro.analysis.flowlint.ratchet import (
    check_baseline,
    count_suppressions,
    write_baseline,
)
from repro.analysis.flowlint.summaries import (
    compute_summaries,
    external_may_raise,
    report_transitive,
)
from repro.analysis.flowlint.typestate import check_typestate


# -- helpers ----------------------------------------------------------------

def graph_of(*files):
    """Build a call graph from (path, source) pairs."""
    return build_callgraph([
        (path, ast.parse(textwrap.dedent(source), filename=path))
        for path, source in files
    ])


def typestate_findings(tmp_path, source, scope="rdma", name="x.py"):
    """Lint one fixture file placed in a repo-shaped tree and return
    only the typestate rules (leaks and protocol violations)."""
    target = tmp_path / "src" / "repro" / scope / name
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    found = lint_paths([str(tmp_path / "src")], run_detlint=False)
    return [f for f in found
            if f.rule in ("resource-leak", "resource-typestate")]


# -- call graph -------------------------------------------------------------

def test_module_name_strips_src_prefix():
    assert module_name("src/repro/rdma/qp.py") == "repro.rdma.qp"
    assert module_name("tests/analysis/test_x.py") == "tests.analysis.test_x"


def test_callgraph_resolves_self_calls_and_constructors():
    graph = graph_of(("src/repro/core/a.py", """
        class Pool:
            def grab(self):
                return self._refill()

            def _refill(self):
                return []

        def make():
            return Pool()
    """))
    grab = graph.functions["repro.core.a.Pool.grab"]
    targets = {s.target for s in grab.sites}
    assert "repro.core.a.Pool._refill" in targets
    make = graph.functions["repro.core.a.make"]
    assert any(s.constructs == "repro.core.a.Pool" for s in make.sites)


def test_callgraph_resolves_across_modules_via_imports():
    graph = graph_of(
        ("src/repro/core/u.py", """
            def helper():
                return 1
        """),
        ("src/repro/core/v.py", """
            from .u import helper

            def caller():
                return helper()
        """),
    )
    caller = graph.functions["repro.core.v.caller"]
    assert caller.sites[0].target == "repro.core.u.helper"


def test_callgraph_unique_method_name_fallback_requires_uniqueness():
    graph = graph_of(("src/repro/core/w.py", """
        class A:
            def frobnicate(self):
                return 0

            def close(self):
                return 0

        class B:
            def close(self):
                return 0

        def f(x):
            x.frobnicate()
            x.close()
    """))
    f = graph.functions["repro.core.w.f"]
    by_name = {}
    for site in f.sites:
        call = site.call
        name = call.func.attr if isinstance(call.func, ast.Attribute) else None
        by_name[name] = site
    # `frobnicate` exists on exactly one class: resolvable.  `close`
    # is ambiguous: must stay external rather than guess.
    assert by_name["frobnicate"].target == "repro.core.w.A.frobnicate"
    assert by_name["close"].target is None


def test_sccs_emit_callees_before_callers():
    graph = graph_of(("src/repro/core/r.py", """
        def leaf():
            return 1

        def ping(n):
            return pong(n - 1) if n else leaf()

        def pong(n):
            return ping(n - 1) if n else 0

        def top(n):
            return ping(n)
    """))
    sccs = graph.sccs()
    flat = [q for scc in sccs for q in scc]
    assert flat.index("repro.core.r.leaf") < flat.index("repro.core.r.ping")
    assert flat.index("repro.core.r.ping") < flat.index("repro.core.r.top")
    recursive = [set(scc) for scc in sccs if len(scc) > 1]
    assert {"repro.core.r.ping", "repro.core.r.pong"} in recursive


def test_callgraph_json_artifact_shape():
    graph = graph_of(("src/repro/core/j.py", """
        def a():
            return b()

        def b():
            return 0
    """))
    payload = graph.to_json()
    assert ["repro.core.j.a", "repro.core.j.b"] == sorted(
        f["qname"] for f in payload["functions"]
    )
    assert ["repro.core.j.a", "repro.core.j.b"] in payload["edges"]
    assert payload["recursive_sccs"] == []


# -- summaries --------------------------------------------------------------

def test_transitive_nondeterminism_reported_with_witness_chain():
    graph = graph_of(("src/repro/core/t.py", """
        import time

        def leaf_clock():
            return time.time()

        def middle():
            return leaf_clock()

        def top():
            return middle()
    """))
    summaries = compute_summaries(graph, {})
    assert summaries["repro.core.t.top"].nondet_chain
    found = report_transitive(graph, summaries)
    nondet = [f for f in found if f.rule == "nondet-transitive"]
    assert nondet, "caller of a wall-clock leaf must be reported"
    assert "time.time" in nondet[0].message


def test_transitive_blocking_upgrades_async_callers():
    graph = graph_of(("src/repro/net/b.py", """
        import time

        def sync_helper():
            time.sleep(0.1)

        async def handler():
            sync_helper()
    """))
    summaries = compute_summaries(graph, {})
    found = report_transitive(graph, summaries)
    assert any(f.rule == "async-blocking" for f in found)


def test_may_raise_respects_catch_all_and_no_raise_builtins():
    graph = graph_of(("src/repro/core/m.py", """
        def guarded(x):
            try:
                risky(x)
            except Exception:
                return None

        def total(xs):
            return len(xs)

        def raising(x):
            return risky(x)
    """))
    summaries = compute_summaries(graph, {})
    assert not summaries["repro.core.m.guarded"].may_raise
    assert not summaries["repro.core.m.total"].may_raise
    assert summaries["repro.core.m.raising"].may_raise


def test_external_may_raise_normalizes_receiver_spellings():
    assert not external_may_raise("self._ids.discard")
    assert not external_may_raise("len")
    assert external_may_raise("machine.create_qp")
    # pop is total only with an explicit default
    popcall = ast.parse("d.pop(k, None)", mode="eval").body
    barepop = ast.parse("d.pop(k)", mode="eval").body
    assert not external_may_raise("d.pop", popcall)
    assert external_may_raise("d.pop", barepop)


# -- typestate: seeded positives -------------------------------------------

def test_leak_when_exception_unwinds_past_held_qp(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, peer):
            qp = node.create_qp("rc")
            peer.handshake()
            qp.close()
    """)
    assert [f.rule for f in found] == ["resource-leak"]
    assert "[qp]" in found[0].message


def test_leak_on_early_return_path(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, flag):
            qp = node.create_qp("rc")
            if flag:
                return None
            qp.close()
            return qp
    """)
    assert any(f.rule == "resource-leak" and "returns" in f.message
               for f in found)


def test_double_release_through_same_chain(tmp_path):
    found = typestate_findings(tmp_path, """
        def teardown(node):
            qp = node.create_qp("rc")
            qp.close()
            qp.close()
    """)
    assert any(f.rule == "resource-typestate"
               and "double-release" in f.message for f in found)


def test_use_after_close(tmp_path):
    found = typestate_findings(tmp_path, """
        def poke(node):
            qp = node.create_qp("rc")
            qp.close()
            qp.post_send(1)
    """)
    assert any(f.rule == "resource-typestate"
               and "use-after-close" in f.message for f in found)


def test_netconn_arm_style_leak(tmp_path):
    found = typestate_findings(tmp_path, """
        async def run(make, payload):
            client = make()
            await client.connect()
            await client.send(payload)
            await client.close()
    """, scope="net")
    assert [f.rule for f in found] == ["resource-leak"]
    assert "[netconn]" in found[0].message


# -- typestate: false-positive guards --------------------------------------

def test_no_finding_when_finally_releases(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, peer):
            qp = node.create_qp("rc")
            try:
                peer.handshake()
            finally:
                qp.close()
    """)
    assert found == []


def test_no_finding_when_except_releases_and_reraises(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, peer):
            qp = node.create_qp("rc")
            try:
                peer.handshake()
            except Exception:
                qp.close()
                raise
            return qp
    """)
    assert found == []


def test_no_finding_when_ownership_escapes_to_helper(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, registry, peer):
            qp = node.create_qp("rc")
            registry.adopt(qp)
            peer.handshake()
    """)
    assert found == []


def test_container_transfer_with_cleanup_on_raise(tmp_path):
    # The fixed ExtentAllocator.allocate shape: extents accumulate in a
    # local list, a partial failure frees them, success returns them.
    found = typestate_findings(tmp_path, """
        def allocate(servers, n):
            extents = []
            try:
                for server in servers:
                    addr = server.allocate_extent()
                    extents.append(addr)
            except MemoryError:
                free(extents)
                raise
            return extents
    """, scope="dfs")
    assert found == []


def test_container_transfer_without_cleanup_still_leaks(tmp_path):
    # ...and without the except handler the mid-loop raise is a leak.
    found = typestate_findings(tmp_path, """
        def allocate(servers, n):
            extents = []
            for server in servers:
                addr = server.allocate_extent()
                extents.append(addr)
            return extents
    """, scope="dfs")
    assert any(f.rule == "resource-leak" and "[extent]" in f.message
               for f in found)


def test_constructor_wrap_keeps_tracking_without_false_escape(tmp_path):
    found = typestate_findings(tmp_path, """
        class Wrapper:
            def __init__(self, qp):
                self.qp = qp

        def build(node):
            qp = node.create_qp("rc")
            return Wrapper(qp)
    """)
    assert found == []


def test_methods_never_track_their_own_object(tmp_path):
    # `await self.connect()` inside reconnect() is lifecycle delegation,
    # not a fresh netconn resource (the StreamClientTransport shape).
    found = typestate_findings(tmp_path, """
        class Conn:
            async def connect(self):
                pass

            async def close(self):
                pass

            async def reconnect(self):
                await self.close()
                await self.connect()
    """, scope="net")
    assert found == []


def test_suppression_pragma_silences_typestate(tmp_path):
    found = typestate_findings(tmp_path, """
        def build(node, peer):
            qp = node.create_qp("rc")  # flowlint: ignore[resource-leak]
            peer.handshake()
            qp.close()
    """)
    assert found == []


# -- ratchet ----------------------------------------------------------------

def test_ratchet_counts_and_baseline_comparison(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text(textwrap.dedent("""
        import time
        t = time.time()  # detlint: ignore[wall-clock] — justified
        u = time.time()  # flowlint: ignore[wall-clock, yield-race]
    """), encoding="utf-8")
    counts = count_suppressions([str(tree)])
    assert counts == {"wall-clock": 2, "yield-race": 1}

    baseline = tmp_path / "baseline.json"
    write_baseline(counts, str(baseline))
    assert check_baseline(counts, str(baseline)) == []
    grown = dict(counts, **{"wall-clock": 3})
    problems = check_baseline(grown, str(baseline))
    assert len(problems) == 1 and "wall-clock" in problems[0]
    # a missing baseline is itself a failure (never silently green)
    assert check_baseline(counts, str(tmp_path / "nope.json"))


def test_cli_writes_callgraph_artifact_and_timings(tmp_path, capsys):
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    (tree / "ok.py").write_text(
        "def a():\n    return b()\n\n\ndef b():\n    return 0\n",
        encoding="utf-8",
    )
    out = tmp_path / "cg.json"
    report = tmp_path / "report.json"
    code = main([
        str(tmp_path / "src"),
        "--callgraph-out", str(out),
        "--json", str(report),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert any(f["qname"].endswith("ok.a") for f in payload["functions"])
    report_payload = json.loads(report.read_text(encoding="utf-8"))
    assert "callgraph" in report_payload["timings_s"]
    assert "resource-typestate" in report_payload["timings_s"]
    capsys.readouterr()


def test_cli_update_baseline_roundtrip(tmp_path, capsys):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text(
        "import time\nt = time.time()  # detlint: ignore[wall-clock]\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    assert main([str(tree), "--update-baseline", str(baseline)]) == 0
    assert main([str(tree), "--baseline", str(baseline), "--no-detlint"]) == 0
    # one more pragma -> ratchet failure
    (tree / "b.py").write_text(
        "import time\nu = time.time()  # detlint: ignore[wall-clock]\n",
        encoding="utf-8",
    )
    assert main([str(tree), "--baseline", str(baseline), "--no-detlint"]) == 1
    capsys.readouterr()


# -- typestate: replica protocols (view-subscription, replica-log) ----------

def test_view_subscription_leak_when_never_unsubscribed(tmp_path):
    found = typestate_findings(tmp_path, """
        def watch(service, handler):
            sub = service.subscribe(handler)
            handler.prime()
    """, scope="replica")
    assert [f.rule for f in found] == ["resource-leak"]
    assert "[view-subscription]" in found[0].message


def test_view_subscription_finally_release_is_safe(tmp_path):
    found = typestate_findings(tmp_path, """
        def watch(service, handler):
            sub = service.subscribe(handler)
            try:
                handler.prime()
            finally:
                sub.unsubscribe()
    """, scope="replica")
    assert found == []


def test_replica_log_leak_when_ship_raise_skips_resolution(tmp_path):
    # The bug shape the protocol exists for: an exception out of the
    # ship leaves the append neither acked nor aborted.
    found = typestate_findings(tmp_path, """
        def commit(log, entry, peers):
            pending = log.append(entry)
            peers.ship(entry)
            pending.ack()
    """, scope="replica")
    assert [f.rule for f in found] == ["resource-leak"]
    assert "[replica-log]" in found[0].message


def test_replica_log_abort_on_raise_is_safe(tmp_path):
    # The _primary_op shape: abort on the exception path, ack otherwise.
    found = typestate_findings(tmp_path, """
        def commit(log, entry, peers):
            pending = log.append(entry)
            try:
                peers.ship(entry)
            except Exception:
                pending.abort()
                raise
            pending.ack()
    """, scope="replica")
    assert found == []


def test_replica_log_abort_counts_as_release(tmp_path):
    found = typestate_findings(tmp_path, """
        def withdraw(log, entry):
            pending = log.append(entry)
            pending.abort()
    """, scope="replica")
    assert found == []


def test_replica_log_protocol_ignores_plain_list_appends(tmp_path):
    # `append` only acquires when the call result is bound: ordinary
    # list bookkeeping must never participate in the protocol.
    found = typestate_findings(tmp_path, """
        def bookkeeping(items, entry):
            items.append(entry)
            items.append(entry)
    """, scope="replica")
    assert found == []
