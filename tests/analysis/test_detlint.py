"""Rule-by-rule tests for the determinism lint (repro.analysis.detlint)."""

import textwrap

from repro.analysis.detlint import RULES, lint_paths, lint_source, main

SRC = "src/repro/example.py"


def findings(source, path=SRC):
    return lint_source(textwrap.dedent(source), path)


def rules_of(source, path=SRC):
    return [f.rule for f in findings(source, path)]


# -- rng-call ---------------------------------------------------------------

def test_module_level_random_call_flagged():
    assert rules_of("import random\nx = random.random()\n") == ["rng-call"]


def test_private_random_instance_flagged():
    assert rules_of(
        """
        from random import Random
        rng = Random(42)
        """
    ) == ["rng-call"]


def test_rng_allowed_inside_registry_module():
    source = "import random\nrng = random.Random(1)\n"
    assert rules_of(source, path="src/repro/sim/rng.py") == []


def test_registry_streams_are_clean():
    assert rules_of(
        """
        from repro.sim.rng import RngRegistry
        rng = RngRegistry(1).stream("x")
        value = rng.random()
        """
    ) == []


def test_dunder_import_evasion_flagged():
    assert rules_of('rng = __import__("random").Random(1)\n') == ["rng-call"]
    assert rules_of("mod = __import__(name)\n") == ["rng-call"]
    assert rules_of('mod = __import__("json")\n') == []


# -- wall-clock -------------------------------------------------------------

def test_wall_clock_read_flagged_in_src():
    assert rules_of("import time\nt = time.time()\n") == ["wall-clock"]


def test_wall_clock_alias_resolved():
    assert rules_of(
        """
        from time import perf_counter as clock
        t = clock()
        """
    ) == ["wall-clock"]


def test_wall_clock_exempt_in_tests_and_benchmarks():
    source = "import time\nt = time.time()\n"
    assert rules_of(source, path="tests/test_x.py") == []
    assert rules_of(source, path="benchmarks/run.py") == []


# -- set-iter ---------------------------------------------------------------

def test_for_over_set_literal_flagged():
    assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["set-iter"]


def test_for_over_inferred_set_name_flagged():
    assert rules_of(
        """
        def f():
            pending = set()
            for item in pending:
                pass
        """
    ) == ["set-iter"]


def test_for_over_self_set_attribute_flagged():
    assert rules_of(
        """
        class C:
            def __init__(self):
                self.members = set()

            def run(self):
                for m in self.members:
                    pass
        """
    ) == ["set-iter"]


def test_sorted_set_is_clean():
    assert rules_of("for x in sorted({1, 2, 3}):\n    pass\n") == []


def test_list_materializing_set_flagged():
    assert rules_of(
        """
        def f():
            s = {1, 2}
            return list(s)
        """
    ) == ["set-iter"]


def test_dict_iteration_is_clean():
    assert rules_of("for k in {1: 'a', 2: 'b'}:\n    pass\n") == []


# -- mutable-default --------------------------------------------------------

def test_mutable_default_flagged():
    assert rules_of("def f(items=[]):\n    pass\n") == ["mutable-default"]
    assert rules_of("def g(cache=dict()):\n    pass\n") == ["mutable-default"]


def test_none_default_is_clean():
    assert rules_of("def f(items=None):\n    pass\n") == []


# -- float-time-eq ----------------------------------------------------------

def test_float_equality_against_timestamp_flagged():
    assert rules_of("ok = start_ns == 1.5\n") == ["float-time-eq"]
    assert rules_of("ok = sim.now == total / 2\n") == ["float-time-eq"]


def test_integer_timestamp_compare_is_clean():
    assert rules_of("ok = start_ns == 1500\n") == []


# -- suppressions -----------------------------------------------------------

def test_rule_specific_suppression():
    assert rules_of(
        "import random\n"
        "x = random.random()  # detlint: ignore[rng-call]\n"
    ) == []


def test_suppression_of_other_rule_does_not_apply():
    assert rules_of(
        "import random\n"
        "x = random.random()  # detlint: ignore[set-iter]\n"
    ) == ["rng-call"]


def test_bare_suppression_covers_all_rules():
    assert rules_of(
        "import random\n"
        "x = random.random()  # detlint: ignore\n"
    ) == []


def test_skip_file_pragma():
    assert rules_of(
        "# detlint: skip-file\nimport random\nx = random.random()\n"
    ) == []


# -- drivers ----------------------------------------------------------------

def test_syntax_error_is_reported_not_raised():
    out = findings("def broken(:\n")
    assert [f.rule for f in out] == ["syntax-error"]


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import random\nx = random.random()\n")
    (pkg / "good.py").write_text("x = 1\n")
    out = lint_paths([str(tmp_path / "src")])
    assert [f.rule for f in out] == ["rng-call"]
    assert out[0].path.endswith("bad.py")


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    pass\n")
    assert main([str(bad)]) == 1
    assert "mutable-default" in capsys.readouterr().out
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main([str(good)]) == 0


def test_list_rules_mentions_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_repository_is_clean():
    """The tree this test runs in must itself pass the lint — including
    the benchmark drivers and examples, which ship alongside src."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    out = lint_paths([
        str(root / "src"), str(root / "tests"),
        str(root / "benchmarks"), str(root / "examples"),
    ])
    assert out == [], "\n".join(f.render() for f in out)
