"""Pass-by-pass tests for the CFG/dataflow lint (repro.analysis.flowlint).

Each pass gets a fixture suite: a seeded bug it must catch and the
nearby race-free / conforming shapes it must *not* flag (the
false-positive guards mirror real code in ``src/``, e.g. the
plain-overwrite-after-await shape of ``StreamServerTransport.start``).
"""

import json
import textwrap

from repro.analysis.flowlint import ALL_RULES, lint_paths, lint_source, main
from repro.analysis.flowlint import cfg as C

SRC = "src/repro/example.py"


def findings(source, path=SRC, **kwargs):
    kwargs.setdefault("run_detlint", False)
    return lint_source(textwrap.dedent(source), path, **kwargs)


def rules_of(source, path=SRC, **kwargs):
    return [f.rule for f in findings(source, path, **kwargs)]


# -- the engine -------------------------------------------------------------

def _first_cfg(source):
    tree = compile(textwrap.dedent(source), "<fixture>", "exec",
                   flags=__import__("ast").PyCF_ONLY_AST)
    func = tree.body[-1]
    if hasattr(func, "body") and func.__class__.__name__ == "ClassDef":
        func = func.body[0]

    def resolver(node):
        import ast

        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return f"self.{node.attr}"
        return None

    return C.build_cfg(func, C.collect_aliases(tree), resolver)


def test_cfg_orders_read_before_await_before_write():
    graph = _first_cfg(
        """
        class K:
            async def bump(self):
                n = self.count
                await self.flush()
                self.count = n + 1
        """
    )
    kinds = [op.kind for block in graph.blocks for op in block.ops]
    assert kinds.index(C.AWAIT) > kinds.index(C.READ)
    assert kinds.index(C.WRITE, kinds.index(C.AWAIT)) > kinds.index(C.AWAIT)


def test_cfg_branches_produce_multiple_blocks():
    graph = _first_cfg(
        """
        class K:
            async def pick(self, flag):
                if flag:
                    self.a = 1
                else:
                    self.b = 2
        """
    )
    assert len(graph.blocks) >= 4  # entry, then, else, join
    assert len(graph.blocks[0].succs) == 2


def test_dataflow_fixpoint_terminates_on_loops():
    graph = _first_cfg(
        """
        class K:
            async def pump(self):
                while self.running:
                    await self.flush()
        """
    )
    states = C.dataflow(graph, lambda block, state: state, lambda xs: 0, 0)
    assert graph.entry in states


# -- yield-race -------------------------------------------------------------

def test_rmw_spanning_await_flagged():
    assert rules_of(
        """
        class Counter:
            async def bump(self):
                n = self.count
                await self.flush()
                self.count = n + 1
        """
    ) == ["yield-race"]


def test_check_then_act_mutation_spanning_await_flagged():
    assert rules_of(
        """
        class Registry:
            async def drop(self, key):
                if key in self._pending:
                    await self.notify()
                    self._pending.pop(key)
        """
    ) == ["yield-race"]


def test_rmw_through_loop_back_edge_flagged():
    assert rules_of(
        """
        class Pump:
            async def run(self):
                while True:
                    n = self.count
                    await self.flush()
                    self.count = n + 1
        """
    ) == ["yield-race"]


def test_race_on_exception_path_flagged():
    # The stale read only reaches the write via the raise -> handler edge.
    assert rules_of(
        """
        class Risky:
            async def go(self):
                try:
                    n = self.count
                    await self.flush()
                except ValueError:
                    self.count = 0 if n else 1
        """
    ) == ["yield-race"]


def test_mutate_before_await_is_clean():
    assert rules_of(
        """
        class Registry:
            async def drop(self, key):
                if key in self._pending:
                    self._pending.pop(key)
                    await self.notify()
        """
    ) == []


def test_reread_after_await_is_clean():
    assert rules_of(
        """
        class Counter:
            async def bump(self):
                await self.flush()
                n = self.count
                self.count = n + 1
        """
    ) == []


def test_plain_overwrite_after_await_is_clean():
    # StreamServerTransport.start's shape: the value written does not
    # derive from a pre-await read of the same name.
    assert rules_of(
        """
        class Server:
            async def start(self):
                self.server = await begin(self.endpoint)
                host, port = self.server.names()
                self.endpoint = make(host, port)
        """
    ) == []


def test_unrelated_write_after_await_is_clean():
    assert rules_of(
        """
        class Counter:
            async def mark(self):
                n = self.count
                await self.flush()
                self.ready = True
        """
    ) == []


def test_generator_yield_race_gated_behind_flag():
    source = """
        QUEUE = []

        def worker():
            n = len(QUEUE)
            yield
            QUEUE.append(n)
        """
    assert rules_of(source) == []
    assert rules_of(source, include_generators=True) == ["yield-race"]


# -- async-blocking ---------------------------------------------------------

def test_time_sleep_in_async_def_flagged():
    assert rules_of(
        """
        import time

        async def pause():
            time.sleep(1)
        """
    ) == ["async-blocking"]


def test_subprocess_in_async_def_flagged():
    assert rules_of(
        """
        import subprocess

        async def shell():
            subprocess.run(["true"])
        """
    ) == ["async-blocking"]


def test_asyncio_sleep_is_clean():
    assert rules_of(
        """
        import asyncio

        async def pause():
            await asyncio.sleep(1)
        """
    ) == []


def test_blocking_call_in_sync_def_is_clean():
    assert rules_of("import time\n\ndef pause():\n    time.sleep(1)\n") == []


def test_nested_sync_helper_is_not_the_async_scope():
    assert rules_of(
        """
        import time

        async def outer():
            def helper():
                time.sleep(1)
            return helper
        """
    ) == []


# -- task-orphan ------------------------------------------------------------

def test_discarded_task_result_flagged():
    assert rules_of(
        """
        import asyncio

        async def go():
            asyncio.create_task(work())
        """
    ) == ["task-orphan"]


def test_unused_local_task_flagged():
    assert rules_of(
        """
        import asyncio

        async def go():
            t = asyncio.create_task(work())
            log("started")
        """
    ) == ["task-orphan"]


def test_attribute_task_without_done_callback_flagged():
    assert rules_of(
        """
        import asyncio

        class Client:
            async def connect(self):
                self._recv_task = asyncio.ensure_future(self.loop())
        """
    ) == ["task-orphan"]


def test_awaited_task_is_clean():
    assert rules_of(
        """
        import asyncio

        async def go():
            t = asyncio.create_task(work())
            await t
        """
    ) == []


def test_gathered_task_is_clean():
    assert rules_of(
        """
        import asyncio

        async def go():
            t = asyncio.create_task(work())
            await asyncio.gather(t)
        """
    ) == []


def test_cancelled_task_is_clean():
    assert rules_of(
        """
        import asyncio

        async def go():
            t = asyncio.create_task(work())
            t.cancel()
        """
    ) == []


def test_attribute_task_with_done_callback_is_clean():
    assert rules_of(
        """
        import asyncio

        class Client:
            async def connect(self):
                self._recv_task = asyncio.ensure_future(self.loop())
                self._recv_task.add_done_callback(self._on_done)
        """
    ) == []


# -- await-no-timeout -------------------------------------------------------

def test_bare_readexactly_flagged():
    assert rules_of(
        """
        async def read(reader):
            return await reader.readexactly(4)
        """
    ) == ["await-no-timeout"]


def test_bare_recv_and_open_connection_flagged():
    assert rules_of(
        """
        import asyncio

        async def dial(transport, host, port):
            await asyncio.open_connection(host, port)
            return await transport.recv()
        """
    ) == ["await-no-timeout", "await-no-timeout"]


def test_wait_for_wrapped_read_is_clean():
    assert rules_of(
        """
        import asyncio

        async def read(reader):
            return await asyncio.wait_for(reader.readexactly(4), timeout=1.0)
        """
    ) == []


def test_non_network_await_is_clean():
    assert rules_of(
        """
        async def take(queue):
            return await queue.get()
        """
    ) == []


# -- stage-name / stage-parity ----------------------------------------------

def test_unknown_stage_literal_flagged():
    assert rules_of(
        """
        def emit(obs, key, now):
            obs.rpc_stage(key, "dispatchx", now)
        """
    ) == ["stage-name"]


def test_ifexp_stage_branches_both_checked():
    assert rules_of(
        """
        def emit(obs, key, now, fast):
            obs.rpc_stage(key, "exec" if fast else "bogus", now)
        """
    ) == ["stage-name"]


def test_canonical_stages_are_clean():
    assert rules_of(
        """
        def emit(obs, key, now):
            obs.rpc_stage(key, "post", now)
            obs.rpc_stage(key, "complete", now)
        """
    ) == []


def _write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def test_stage_parity_flags_net_only_stage(tmp_path):
    _write(tmp_path / "sim" / "driver.py", """
        def emit(obs, key, now):
            obs.rpc_stage(key, "post", now)
            obs.rpc_stage(key, "complete", now)
        """)
    _write(tmp_path / "net" / "driver.py", """
        def emit(obs, key, now):
            obs.rpc_stage(key, "post", now)
            obs.rpc_stage(key, "dispatch", now)
        """)
    out = lint_paths([str(tmp_path)])
    assert [f.rule for f in out] == ["stage-parity"]
    assert out[0].path.endswith("net/driver.py")
    assert "'dispatch'" in out[0].message


def test_stage_parity_clean_when_net_vocab_is_subset(tmp_path):
    _write(tmp_path / "sim" / "driver.py", """
        def emit(obs, key, now):
            obs.rpc_stage(key, "post", now)
            obs.rpc_stage(key, "dispatch", now)
            obs.rpc_stage(key, "complete", now)
        """)
    _write(tmp_path / "net" / "driver.py", """
        def emit(obs, key, now):
            obs.rpc_stage(key, "post", now)
            obs.rpc_stage(key, "complete", now)
        """)
    assert lint_paths([str(tmp_path)]) == []


def test_stage_parity_skipped_without_both_sides(tmp_path):
    _write(tmp_path / "net" / "driver.py", """
        def emit(obs, key, now):
            obs.rpc_stage(key, "dispatch", now)
        """)
    assert lint_paths([str(tmp_path)]) == []


# -- proto-transition -------------------------------------------------------

def test_illegal_literal_transition_flagged():
    assert rules_of(
        """
        from repro.core.protocol import ClientState, ProtocolEvent, client_transition

        def bad():
            client_transition(ClientState.PROCESS, ProtocolEvent.ANNOUNCE)
        """
    ) == ["proto-transition"]


def test_legal_literal_transition_is_clean():
    assert rules_of(
        """
        from repro.core.protocol import ClientState, ProtocolEvent, client_transition

        def good():
            client_transition(ClientState.IDLE, ProtocolEvent.ACTIVATE)
        """
    ) == []


def test_dynamic_transition_arguments_are_clean():
    # Non-literal pairs are the runtime ProtocolError's job.
    assert rules_of(
        """
        from repro.core.protocol import client_transition

        def forward(state, event):
            return client_transition(state, event)
        """
    ) == []


def test_direct_state_store_flagged():
    assert rules_of(
        """
        from repro.core.protocol import ClientState

        class Client:
            def rebind(self):
                self.state = ClientState.PROCESS
        """
    ) == ["proto-transition"]


def test_idle_store_in_init_is_clean():
    assert rules_of(
        """
        from repro.core.protocol import ClientState

        class Client:
            def __init__(self):
                self.state = ClientState.IDLE

            def reset_epoch(self):
                self.state = ClientState.IDLE
        """
    ) == []


def test_protocol_module_itself_is_exempt():
    assert rules_of(
        """
        class Machine:
            def force(self):
                self.state = ClientState.PROCESS
        """,
        path="src/repro/core/protocol.py",
    ) == []


# -- suppressions (shared with detlint) -------------------------------------

def test_flowlint_rule_suppressed_with_detlint_spelling():
    assert rules_of(
        """
        class Counter:
            async def bump(self):
                n = self.count
                await self.flush()
                self.count = n + 1  # detlint: ignore[yield-race]
        """
    ) == []


def test_bare_flowlint_ignore_covers_flow_rules():
    assert rules_of(
        """
        import time

        async def pause():
            time.sleep(1)  # flowlint: ignore
        """
    ) == []


def test_skip_file_pragma_covers_flow_rules():
    assert rules_of(
        """
        # flowlint: skip-file
        import time

        async def pause():
            time.sleep(1)
        """
    ) == []


# -- the one-parse detlint seam ---------------------------------------------

def test_detlint_rules_ride_the_same_parse():
    out = lint_source(textwrap.dedent(
        """
        import asyncio

        async def go(items=[]):
            asyncio.create_task(work())
        """
    ), SRC)
    assert sorted(f.rule for f in out) == ["mutable-default", "task-orphan"]


def test_no_detlint_flag_runs_only_flow_rules():
    assert rules_of("def f(items=[]):\n    pass\n") == []


# -- CLI / JSON -------------------------------------------------------------

def test_main_writes_json_report_and_fails(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import asyncio\n\n\nasync def go():\n    asyncio.create_task(w())\n"
    )
    report = tmp_path / "report.json"
    assert main([str(bad), "--json", str(report)]) == 1
    assert "task-orphan" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload["tool"] == "flowlint"
    assert payload["total"] == 1
    assert payload["counts"] == {"task-orphan": 1}
    assert payload["findings"][0]["rule"] == "task-orphan"
    assert payload["findings"][0]["path"] == str(bad)


def test_main_clean_exit(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main([str(good)]) == 0


def test_list_rules_covers_both_catalogs(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule in out
    assert "yield-race" in out and "rng-call" in out


def test_syntax_error_is_reported_not_raised():
    assert rules_of("def broken(:\n") == ["syntax-error"]


# -- self-run ---------------------------------------------------------------

def test_repository_is_flowlint_clean():
    """Everything this tree ships — src, tests, benchmarks, examples —
    must pass flowlint (which includes the detlint rules)."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    out = lint_paths([
        str(root / "src"), str(root / "tests"),
        str(root / "benchmarks"), str(root / "examples"),
    ])
    assert out == [], "\n".join(f.render() for f in out)
