"""The schedule-space model checker (repro.analysis.mc).

Every test carries ``no_sanitize``: the explorer installs its own
SimSanitizer per execution (and deliberately breaks FIFO delivery), so
the conftest-level instance must stay out of the way.
"""

import json

import pytest

from repro.analysis.mc import SCENARIOS, Explorer, replay
from repro.analysis.mc.__main__ import main as mc_main

pytestmark = pytest.mark.no_sanitize


def test_scenario_matrix_covers_the_issue_shapes():
    names = sorted(SCENARIOS)
    assert "nowarm-2c-1g" in names
    assert any("midjoin" in name for name in names)  # mid-slice join
    assert any("straggler" in name for name in names)  # straggler client
    assert any(name.startswith("warm-") for name in names)  # context switch


def test_empty_schedule_is_deterministic():
    explorer = Explorer(SCENARIOS["nowarm-2c-1g"])
    first = explorer.run_one()
    second = explorer.run_one()
    assert first.ok and first.done
    assert (first.schedule, first.steps, first.sim_now) == (
        second.schedule,
        second.steps,
        second.sim_now,
    )


def test_nowarm_2c_1g_exhausts_with_many_schedules_and_no_violations():
    """ISSUE acceptance: the smallest scenario exhausts clean (>1 schedule)."""
    report = Explorer(SCENARIOS["nowarm-2c-1g"]).explore(max_schedules=800)
    assert report.exhausted
    assert report.schedules > 1
    assert report.ok, report.render()


def test_buggy_variant_is_flagged_with_replayable_artifact(tmp_path):
    """ISSUE acceptance + S5: the resurrected double-activation race is
    caught, and its artifact replays to the same violation."""
    scenario = SCENARIOS["nowarm-2c-1g"]
    report = Explorer(scenario, buggy=True).explore(
        max_schedules=5, artifact_dir=tmp_path
    )
    assert not report.ok
    rules = {
        violation.rule
        for execution in report.violating
        for violation in execution.violations
    }
    assert "duplicate-activation" in rules or "stale-rebind" in rules
    assert report.artifacts

    artifact = report.artifacts[0]
    doc = json.loads(open(artifact).read())
    assert doc["scenario"] == scenario.name and doc["buggy"] is True

    replayed = replay(scenario, artifact)
    assert [v.rule for v in replayed.violations] == [
        v["rule"] for v in doc["violations"]
    ]


def test_fixed_code_passes_the_schedule_that_breaks_the_buggy_variant(tmp_path):
    """S5: the historical race's counterexample schedule is clean on the
    fixed protocol — the regression is pinned to the guard, not the world."""
    scenario = SCENARIOS["nowarm-2c-1g"]
    report = Explorer(scenario, buggy=True).explore(
        max_schedules=5, artifact_dir=tmp_path
    )
    assert not report.ok
    counterexample = report.violating[0].schedule
    fixed = replay(scenario, counterexample, buggy=False)
    assert fixed.ok, [v.rule for v in fixed.violations]


def test_cli_single_scenario_returns_zero(capsys):
    assert mc_main(["--scenario", "nowarm-2c-1g", "--max-schedules", "60"]) == 0
    out = capsys.readouterr().out
    assert "mc[nowarm-2c-1g]" in out


def test_cli_buggy_mode_passes_on_detection(capsys):
    assert (
        mc_main(
            ["--scenario", "nowarm-2c-1g", "--buggy", "--max-schedules", "5"]
        )
        == 0
    )
    assert "flagged as expected" in capsys.readouterr().out


def test_cli_list(capsys):
    assert mc_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
