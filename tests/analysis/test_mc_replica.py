"""Model-checking the replica subsystem (repro.analysis.mc.replica).

Small schedule budgets keep these inside a test-suite budget; the CI
``replica`` job sweeps the same scenarios much wider.  ``no_sanitize``
for the same reason as test_mc: the explorer owns its sanitizer.
"""

import pytest

from repro.analysis.mc import SCENARIOS, Explorer
from repro.analysis.mc.__main__ import main as mc_main
from repro.analysis.mc.replica import REPLICA_SCENARIOS

pytestmark = pytest.mark.no_sanitize


def test_replica_scenarios_are_registered():
    for name in (
        "replica-primary-dies",
        "replica-backup-dies-promotion",
        "replica-partition-dual-primary",
    ):
        assert name in REPLICA_SCENARIOS
        assert name in SCENARIOS  # the CLI sees them through the matrix


def test_primary_death_explores_clean():
    report = Explorer(SCENARIOS["replica-primary-dies"]).explore(
        max_schedules=6
    )
    assert report.schedules >= 1
    assert report.ok, report.render()


def test_backup_death_during_promotion_explores_clean():
    report = Explorer(SCENARIOS["replica-backup-dies-promotion"]).explore(
        max_schedules=6
    )
    assert report.ok, report.render()


def test_partition_cannot_produce_dual_primary():
    report = Explorer(SCENARIOS["replica-partition-dual-primary"]).explore(
        max_schedules=6
    )
    assert report.ok, report.render()


def test_buggy_partition_commits_at_a_stale_epoch(tmp_path):
    """With fencing and the ack gate off, the partitioned primary keeps
    committing after the view deposed it — the dual-primary violation
    the guards exist to prevent."""
    scenario = SCENARIOS["replica-partition-dual-primary"]
    report = Explorer(scenario, buggy=True).explore(
        max_schedules=3, artifact_dir=tmp_path
    )
    assert not report.ok
    rules = {
        violation.rule
        for execution in report.violating
        for violation in execution.violations
    }
    assert "dual-primary-commit" in rules
    assert report.artifacts  # replayable evidence on disk


def test_cli_runs_a_replica_scenario(capsys):
    code = mc_main([
        "--scenario", "replica-primary-dies", "--max-schedules", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "replica-primary-dies" in out


def test_cli_buggy_replica_scenario_passes_on_detection(capsys):
    code = mc_main([
        "--scenario", "replica-partition-dual-primary",
        "--max-schedules", "3", "--buggy",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "flagged" in out
