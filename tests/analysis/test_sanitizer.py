"""SimSanitizer behaviour: clean runs, provoked violations, additivity.

Every test here installs its own sanitizer (or deliberately violates an
invariant), so the whole module opts out of the conftest's autouse
instrumentation with ``no_sanitize``.
"""

import pytest

from repro.analysis.sanitize import (
    SimSanitizer,
    enabled_from_env,
    sanitized_run,
)
from repro.rdma.cq import Completion, CompletionQueue
from repro.rdma.fabric import Fabric
from repro.rdma.node import Node
from repro.rdma.qp import QpError, QpState
from repro.rdma.types import Opcode, Transport
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

pytestmark = pytest.mark.no_sanitize


def test_enabled_from_env(monkeypatch):
    for value, expected in [
        ("1", True), ("true", True), ("yes", True),
        ("0", False), ("false", False), ("no", False), ("", False),
    ]:
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert enabled_from_env() is expected
    monkeypatch.delenv("REPRO_SANITIZE")
    assert enabled_from_env() is False


def test_clean_run_reports_ok():
    def body():
        sim = Simulator()
        seen = []

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(10)
                seen.append(sim.now)

        sim.process(proc(sim), name="p")
        sim.run(until=100)
        return seen

    seen, report = sanitized_run(body)
    assert seen == [10, 20, 30, 40, 50]
    assert report.ok, report.render()
    assert report.stats.get("sims") == 1


def test_uninstall_restores_classes():
    pristine_deliver = Simulator._schedule
    sanitizer = SimSanitizer()
    sanitizer.install()
    assert Simulator._schedule is not pristine_deliver
    sanitizer.uninstall()
    assert Simulator._schedule is pristine_deliver


def test_illegal_qp_transition_is_reported():
    def body():
        sim = Simulator()
        fabric = Fabric(sim)
        node = Node(sim, "n0", fabric)
        qp = node.create_qp(Transport.RC)
        assert qp.state is QpState.INIT
        with pytest.raises(QpError):
            qp.state = QpState.RESET  # INIT -> RESET is not a verbs edge

    _, report = sanitized_run(body)
    assert report.rule_counts.get("qp-transition") == 1
    assert any(f.rule == "qp-transition" for f in report.findings)


def test_cq_double_push_and_double_poll_reported():
    def body():
        sim = Simulator()
        cq = CompletionQueue(sim, name="t.cq")
        completion = Completion(wr_id=7, opcode=Opcode.SEND, qp_num=1)
        cq.push(completion)
        cq.push(completion)  # same entry deposited twice
        assert cq.poll() == [completion, completion]

    _, report = sanitized_run(body)
    assert report.rule_counts.get("cq-double-push") == 1
    # The second poll of the same entry is the mirror violation.
    assert report.rule_counts.get("cq-double-poll") == 1


def test_cq_overflow_reported():
    def body():
        sim = Simulator()
        cq = CompletionQueue(sim, name="tiny", depth=2)
        for wr_id in range(3):
            cq.push(Completion(wr_id=wr_id, opcode=Opcode.SEND, qp_num=1))

    _, report = sanitized_run(body)
    assert report.rule_counts.get("cq-overflow") == 1


def test_unpolled_cq_is_a_stat_not_a_finding():
    def body():
        sim = Simulator()
        cq = CompletionQueue(sim, name="inflight")
        cq.push(Completion(wr_id=1, opcode=Opcode.SEND, qp_num=1))

    _, report = sanitized_run(body)
    assert report.ok, report.render()
    assert report.stats.get("cq_inflight_at_finish") == 1


def test_resource_conservation_checked_at_finish():
    def body():
        sim = Simulator()
        resource = Resource(sim, capacity=2, name="cores")
        event = resource.request()
        assert event.triggered
        resource._in_use = 2  # corrupt occupancy behind the accounting

    _, report = sanitized_run(body)
    assert report.rule_counts.get("resource-conservation", 0) >= 1


def test_recv_wqe_conservation_checked_at_finish():
    def body():
        sim = Simulator()
        fabric = Fabric(sim)
        node = Node(sim, "n0", fabric)
        qp = node.create_qp(Transport.UD)
        qp.recvs_posted = 3  # claim posts that never reached the queue

    _, report = sanitized_run(body)
    assert report.rule_counts.get("qp-recv-conservation") == 1


def test_sanitizer_is_additive():
    """Instrumentation observes the run without changing its results."""
    from repro.bench.harness import RpcExperiment, run_rpc_experiment

    experiment = RpcExperiment(
        system="scalerpc",
        n_clients=4,
        n_client_machines=2,
        group_size=4,
        warmup_ns=50_000,
        measure_ns=200_000,
        seed=7,
    )
    plain = run_rpc_experiment(experiment)
    sanitized, report = sanitized_run(lambda: run_rpc_experiment(experiment))
    assert report.ok, report.render()
    assert sanitized.completed_ops == plain.completed_ops
    assert sanitized.window_ns == plain.window_ns
    assert sanitized.throughput_mops == plain.throughput_mops
    assert sanitized.latency == plain.latency


def test_static_region_overwrite_while_live_reported():
    """S1: the liveness rule covers the static-mapping baselines too —
    a write landing on a dispatched-but-unread request is flagged."""
    from repro.core.message import RpcRequest
    from repro.rdma.node import InboundWrite
    from repro.transport import Topology

    def body():
        topo = Topology.build(n_client_machines=1, seed=3)
        server = topo.build_server("rawwrite", lambda request: request.payload)
        client = server.connect(topo.machines[0])
        server.start()
        addr = server.bindings[client.client_id].request_region.range.base
        request = RpcRequest(client_id=client.client_id, rpc_type="bench")
        server.dispatch(request, addr)  # live: no worker has read it yet
        topo.server_node.deliver_write(
            InboundWrite(addr=addr, size=request.wire_bytes, payload=request,
                         imm_data=None, src_qp_num=0, time_ns=0)
        )

    _, report = sanitized_run(body)
    assert report.rule_counts.get("msgpool-overwrite-live") == 1
    # Two dispatches: the explicit one plus the delivered write reaching
    # the server's own request watcher.
    assert report.stats.get("baseline_dispatched") == 2


def test_static_region_overwrite_after_read_is_legal():
    """The worker's cpu_access consumes liveness; later reuse is fine."""
    from repro.core.message import RpcRequest
    from repro.rdma.node import InboundWrite
    from repro.transport import Topology

    def body():
        topo = Topology.build(n_client_machines=1, seed=3)
        server = topo.build_server("rawwrite", lambda request: request.payload)
        client = server.connect(topo.machines[0])
        server.start()
        addr = server.bindings[client.client_id].request_region.range.base
        request = RpcRequest(client_id=client.client_id, rpc_type="bench")
        server.dispatch(request, addr)
        topo.sim.run()  # the worker reads (and answers) the request
        topo.server_node.deliver_write(
            InboundWrite(addr=addr, size=request.wire_bytes, payload=request,
                         imm_data=None, src_qp_num=0, time_ns=0)
        )

    _, report = sanitized_run(body)
    assert "msgpool-overwrite-live" not in report.rule_counts
