"""Behavioural tests for the RawWrite, HERD, and FaSST baselines."""

import pytest

from repro.baselines import (
    BaselineConfig,
    FasstServer,
    HerdServer,
    RawWriteServer,
)
from repro.rdma import Fabric, Node, Transport
from repro.sim import Simulator

SERVERS = {
    "rawwrite": RawWriteServer,
    "herd": HerdServer,
    "fasst": FasstServer,
}


def make(kind, n_clients, n_machines=2, **config_kwargs):
    sim = Simulator()
    fabric = Fabric(sim)
    node = Node(sim, "server", fabric)
    config = BaselineConfig(
        block_size=256, blocks_per_client=8, n_server_threads=2, **config_kwargs
    )
    server = SERVERS[kind](node, lambda r: ("ok", r.payload), config=config)
    machines = [Node(sim, f"m{i}", fabric) for i in range(n_machines)]
    clients = [server.connect(machines[i % n_machines]) for i in range(n_clients)]
    server.start()
    return sim, server, clients


def drive(sim, clients, batch, n_batches):
    out = []
    drivers = []

    def loop(sim, client):
        for b in range(n_batches):
            handles = []
            for i in range(batch):
                handle = yield from client.async_call("echo", payload=(client.client_id, b, i))
                handles.append(handle)
            yield from client.flush()
            responses = yield from client.poll_completions(handles)
            for handle, response in zip(handles, responses):
                out.append((handle, response))

    for client in clients:
        drivers.append(sim.process(loop(sim, client)))
    while sim.peek() is not None and sim.now < 500_000_000:
        if all(d.triggered for d in drivers):
            break
        sim.step()
    return out, drivers


class TestAllBaselinesRoundtrip:
    @pytest.mark.parametrize("kind", list(SERVERS))
    def test_all_responses_arrive_and_match(self, kind):
        sim, server, clients = make(kind, n_clients=6)
        out, drivers = drive(sim, clients, batch=4, n_batches=5)
        assert all(d.triggered for d in drivers)
        assert len(out) == 6 * 4 * 5
        for handle, response in out:
            assert response.payload == ("ok", handle.request.payload)
        assert server.stats.completed == len(out)

    @pytest.mark.parametrize("kind", list(SERVERS))
    def test_latencies_are_positive_and_bounded(self, kind):
        sim, server, clients = make(kind, n_clients=2)
        out, _ = drive(sim, clients, batch=1, n_batches=10)
        for handle, _resp in out:
            assert handle.latency_ns is not None
            assert 0 < handle.latency_ns < 1_000_000


class TestTransportChoices:
    def test_rawwrite_uses_rc_both_ways(self):
        sim, server, clients = make("rawwrite", n_clients=2)
        assert all(qp.transport is Transport.RC for qp in server.node.qps)

    def test_herd_uses_uc_requests_and_ud_responses(self):
        sim, server, clients = make("herd", n_clients=2)
        transports = {qp.transport for qp in server.node.qps}
        assert transports == {Transport.UC, Transport.UD}

    def test_fasst_is_ud_only_with_thread_count_qps(self):
        sim, server, clients = make("fasst", n_clients=5)
        server_qps = server.node.qps
        assert all(qp.transport is Transport.UD for qp in server_qps)
        # One QP per worker thread, independent of the 5 clients.
        assert len(server_qps) == server.config.n_server_threads

    def test_fasst_has_no_per_client_server_buffers(self):
        sim, server, clients = make("fasst", n_clients=4)
        assert all(b.request_region is None for b in server.bindings.values())

    def test_rawwrite_server_memory_grows_with_clients(self):
        _, few, _ = make("rawwrite", n_clients=2)
        _, many, _ = make("rawwrite", n_clients=8)
        region_count = lambda srv: len(srv.node.mr_table)
        assert region_count(many) > region_count(few)


class TestClientCosts:
    def test_ud_clients_pay_more_cpu(self):
        _, _, raw_clients = make("rawwrite", n_clients=1)
        _, _, fasst_clients = make("fasst", n_clients=1)
        assert fasst_clients[0]._post_ns > raw_clients[0]._post_ns
        assert fasst_clients[0]._poll_ns > raw_clients[0]._poll_ns

    def test_uses_cq_polling_flags(self):
        _, _, raw = make("rawwrite", n_clients=1)
        _, _, herd = make("herd", n_clients=1)
        _, _, fasst = make("fasst", n_clients=1)
        assert not raw[0].uses_cq_polling
        assert herd[0].uses_cq_polling
        assert fasst[0].uses_cq_polling


class TestServerConnCacheBehaviour:
    def test_rawwrite_outbound_touches_conn_cache(self):
        sim, server, clients = make("rawwrite", n_clients=4)
        drive(sim, clients, batch=2, n_batches=5)
        assert server.node.nic.stats.conn_hits + server.node.nic.stats.conn_misses > 0

    @pytest.mark.parametrize("kind", ["herd", "fasst"])
    def test_ud_responses_skip_conn_cache(self, kind):
        sim, server, clients = make(kind, n_clients=4)
        drive(sim, clients, batch=2, n_batches=5)
        # Responses are UD sends: the server NIC never keys per-connection.
        assert server.node.nic.stats.conn_hits == 0
        assert server.node.nic.stats.conn_misses == 0


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BaselineConfig(block_size=32)
        with pytest.raises(ValueError):
            BaselineConfig(recv_depth=0)

    def test_double_start_rejected(self):
        sim, server, clients = make("rawwrite", n_clients=1)
        with pytest.raises(RuntimeError):
            server.start()
