"""Transport reliability at the RPC level under injected fabric loss.

The paper's case for RC (Section 5.2): reliable delivery matters to the
systems above.  Under loss, ScaleRPC/RawWrite (RC) complete every call;
HERD rides UC/UD and silently loses requests or responses.
"""

from repro.baselines import BaselineConfig, HerdServer, RawWriteServer
from repro.core import ScaleRpcConfig, ScaleRpcServer
from repro.rdma import Fabric, Node, WireParams
from repro.sim import Simulator


def build(kind, loss):
    sim = Simulator()
    fabric = Fabric(sim, WireParams(loss_rate=loss), seed=3)
    node = Node(sim, "server", fabric)
    if kind == "scalerpc":
        server = ScaleRpcServer(
            node, lambda r: r.payload,
            config=ScaleRpcConfig(group_size=4, time_slice_ns=50_000),
        )
    else:
        cls = {"rawwrite": RawWriteServer, "herd": HerdServer}[kind]
        server = cls(node, lambda r: r.payload, config=BaselineConfig())
    machines = [Node(sim, f"m{i}", fabric) for i in range(2)]
    clients = [server.connect(machines[i % 2]) for i in range(4)]
    server.start()
    return sim, fabric, server, clients


def drive(sim, clients, n_calls, cap_ns=80_000_000):
    completed = []
    drivers = []

    def loop(sim, client):
        for i in range(n_calls):
            handle = yield from client.async_call("echo", payload=i)
            yield from client.flush()
            yield from client.poll_completions([handle])
            completed.append((client.client_id, i))

    for client in clients:
        drivers.append(sim.process(loop(sim, client)))
    while sim.peek() is not None and sim.now < cap_ns:
        if all(d.triggered for d in drivers):
            break
        sim.step()
    return completed, drivers


class TestReliability:
    def test_rc_rpcs_survive_loss(self):
        for kind in ("scalerpc", "rawwrite"):
            sim, fabric, server, clients = build(kind, loss=0.2)
            completed, drivers = drive(sim, clients, n_calls=20)
            assert all(d.triggered for d in drivers), kind
            assert len(completed) == 4 * 20
            # RC never exercises the loss path.
            assert fabric.packets_lost == 0

    def test_herd_loses_calls_under_loss(self):
        sim, fabric, server, clients = build("herd", loss=0.2)
        completed, drivers = drive(sim, clients, n_calls=20)
        # Some UC requests / UD responses vanished: calls hang forever.
        assert fabric.packets_lost > 0
        assert len(completed) < 4 * 20
        assert not all(d.triggered for d in drivers)

    def test_herd_is_fine_without_loss(self):
        sim, fabric, server, clients = build("herd", loss=0.0)
        completed, drivers = drive(sim, clients, n_calls=20)
        assert all(d.triggered for d in drivers)
        assert len(completed) == 4 * 20
