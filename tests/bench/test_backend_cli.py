"""The bench CLI's --backend flag and run_figure's backend dispatch."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL_FIGURES, BACKEND_FIGURES, run_figure


class TestBackendCli:
    def test_unknown_backend_lists_available(self, capsys):
        assert main(["--figure", "fig8_clients", "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend: bogus" in err
        assert "available backends:" in err
        assert "sim" in err and "proc" in err

    def test_unknown_backend_checked_even_with_all(self, capsys):
        assert main(["--all", "--backend", "nope"]) == 2
        assert "available backends:" in capsys.readouterr().err

    def test_unknown_figure_still_reported_first(self, capsys):
        assert main(["--figure", "fig_bogus"]) == 2
        assert "available figures:" in capsys.readouterr().err


class TestRunFigureBackend:
    def test_backend_figures_are_registered(self):
        assert "fig_real" in ALL_FIGURES
        assert BACKEND_FIGURES <= set(ALL_FIGURES)

    def test_sim_only_figure_rejects_proc(self):
        with pytest.raises(ValueError, match="only runs on the sim backend"):
            run_figure("fig8_clients", backend="proc")

    def test_fig_real_needs_a_real_backend(self):
        # fig_real IS the sim-vs-real comparison; "sim alone" is not one.
        from repro.bench.experiments import fig_real

        with pytest.raises(ValueError, match="compares sim against"):
            fig_real(backend="sim")
