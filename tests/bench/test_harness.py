"""Tests for the RPC experiment harness."""

import pytest

from repro.bench import RpcExperiment, run_rpc_experiment


class TestExperimentValidation:
    def test_unknown_system(self):
        with pytest.raises(ValueError):
            RpcExperiment(system="tcp")

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            RpcExperiment(n_clients=0)
        with pytest.raises(ValueError):
            RpcExperiment(batch_size=0)
        with pytest.raises(ValueError):
            RpcExperiment(n_client_machines=0)


class TestSmallRuns:
    def _run(self, **kwargs):
        defaults = dict(
            n_clients=8,
            n_client_machines=2,
            warmup_ns=200_000,
            measure_ns=400_000,
            group_size=8,
            time_slice_ns=50_000,
        )
        defaults.update(kwargs)
        return run_rpc_experiment(RpcExperiment(**defaults))

    @pytest.mark.parametrize("system", ["scalerpc", "rawwrite", "herd", "fasst"])
    def test_each_system_produces_throughput(self, system):
        result = self._run(system=system)
        assert result.throughput_mops > 0.1
        assert result.completed_ops > 0
        assert result.latency.median_ns > 0

    def test_deterministic_given_seed(self):
        a = self._run(system="scalerpc", seed=7)
        b = self._run(system="scalerpc", seed=7)
        assert a.throughput_mops == b.throughput_mops
        assert a.latency.median_ns == b.latency.median_ns

    def test_batching_increases_throughput_under_light_load(self):
        small = self._run(system="rawwrite", batch_size=1)
        large = self._run(system="rawwrite", batch_size=8)
        assert large.throughput_mops > small.throughput_mops

    def test_think_time_reduces_throughput(self):
        busy = self._run(system="rawwrite")
        idle = self._run(
            system="rawwrite",
            think_time_fn=lambda _cid, _rng: 50_000,
        )
        assert idle.throughput_mops < 0.7 * busy.throughput_mops

    def test_handler_cost_reduces_throughput(self):
        cheap = self._run(system="rawwrite", n_clients=16)
        costly = self._run(system="rawwrite", n_clients=16, handler_cost_ns=20_000)
        assert costly.throughput_mops < cheap.throughput_mops

    def test_counters_are_collected(self):
        result = self._run(system="rawwrite")
        assert result.counters.window_ns > 0
        # Every request write is at least one ItoM/RFO at the server.
        assert (
            result.counters.itom_per_s + result.counters.rfo_per_s > 0
        )

    def test_adaptive_window_reports_actual_span(self):
        result = self._run(system="scalerpc")
        assert result.window_ns >= 400_000


class TestMultiSeed:
    def test_multi_seed_runs_and_aggregates(self):
        from repro.bench import RpcExperiment, run_multi_seed

        experiment = RpcExperiment(
            system="rawwrite",
            n_clients=6,
            n_client_machines=2,
            warmup_ns=150_000,
            measure_ns=300_000,
        )
        result = run_multi_seed(experiment, seeds=(1, 2))
        assert len(result.results) == 2
        assert result.mean_mops > 0
        assert result.spread_mops >= 0
        assert result.results[0].experiment.seed == 1
        assert result.results[1].experiment.seed == 2


class TestDrainPhase:
    @pytest.mark.no_sanitize  # manages its own sanitizer via sanitized_run
    def test_experiment_ends_with_zero_inflight_completions(self):
        """The drain phase closes CQ accounting exactly: the sanitizer's
        old ~n_clients in-flight slack is gone."""
        from repro.analysis.sanitize import sanitized_run

        experiment = RpcExperiment(
            system="scalerpc",
            n_clients=6,
            n_client_machines=2,
            group_size=6,
            warmup_ns=100_000,
            measure_ns=300_000,
            seed=5,
        )
        result, report = sanitized_run(lambda: run_rpc_experiment(experiment))
        assert result.completed_ops > 0
        assert report.ok, report.render()
        assert "cq_inflight_at_finish" not in report.stats

    def test_drain_does_not_change_measured_results(self):
        """Two identical runs agree (the drain phase is post-measurement
        and deterministic, so this also guards against drain-time state
        leaking into the recorded window)."""
        experiment = RpcExperiment(
            system="herd",
            n_clients=4,
            n_client_machines=2,
            warmup_ns=100_000,
            measure_ns=300_000,
            seed=9,
        )
        first = run_rpc_experiment(experiment)
        second = run_rpc_experiment(experiment)
        assert first.throughput_mops == second.throughput_mops
        assert first.latency == second.latency
        assert first.completed_ops == second.completed_ops
