"""Tests for the measurement utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import LatencyRecorder, throughput_mops


class TestLatencyRecorder:
    def test_empty_stats_raise(self):
        with pytest.raises(ValueError):
            LatencyRecorder().stats()
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(50)
        with pytest.raises(ValueError):
            LatencyRecorder().cdf()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_stats_values(self):
        recorder = LatencyRecorder()
        recorder.extend([1000, 2000, 3000, 4000, 100000])
        stats = recorder.stats()
        assert stats.count == 5
        assert stats.median_ns == 3000
        assert stats.max_ns == 100000
        assert stats.mean_ns == pytest.approx(22000)

    def test_as_us(self):
        recorder = LatencyRecorder()
        recorder.extend([2000, 4000])
        us = recorder.stats().as_us()
        assert us["median_us"] == pytest.approx(3.0)
        assert us["max_us"] == pytest.approx(4.0)

    def test_percentile(self):
        recorder = LatencyRecorder()
        recorder.extend(range(0, 101))
        assert recorder.percentile(50) == pytest.approx(50)
        assert recorder.percentile(99) == pytest.approx(99)

    def test_cdf_monotone(self):
        recorder = LatencyRecorder()
        recorder.extend([5000, 1000, 3000, 2000, 4000])
        points = recorder.cdf(points=10)
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_clear(self):
        recorder = LatencyRecorder()
        recorder.record(1)
        recorder.clear()
        assert len(recorder) == 0

    @given(samples=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_stats_bounds(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        stats = recorder.stats()
        assert min(samples) <= stats.median_ns <= max(samples)
        assert stats.max_ns == max(samples)
        assert min(samples) <= stats.mean_ns <= max(samples)


class TestThroughput:
    def test_mops(self):
        assert throughput_mops(2_000_000, 1_000_000_000) == pytest.approx(2.0)
        assert throughput_mops(500, 1_000_000) == pytest.approx(0.5)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            throughput_mops(1, 0)
