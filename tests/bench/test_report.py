"""Tests for the table renderer."""

import pytest

from repro.bench import FigureResult


@pytest.fixture
def result():
    return FigureResult(
        figure="Figure X",
        title="A test figure",
        x_label="clients",
        x_values=(40, 120),
        series={"scalerpc": [10.0, 9.5], "rawwrite": [13.0, 3.5]},
        notes=["a note"],
    )


class TestFigureResult:
    def test_value_lookup(self, result):
        assert result.value("scalerpc", 120) == 9.5
        assert result.value("rawwrite", 40) == 13.0

    def test_value_unknown_x(self, result):
        with pytest.raises(ValueError):
            result.value("scalerpc", 999)

    def test_render_contains_everything(self, result):
        text = result.render()
        assert "Figure X" in text
        assert "scalerpc" in text
        assert "13.00" in text
        assert "a note" in text
        assert "clients" in text

    def test_render_aligned_rows(self, result):
        lines = result.render().splitlines()
        rows = [l for l in lines if "|" in l]
        pipe_columns = {l.index("|") for l in rows}
        assert len(pipe_columns) == 1, "rows must align on the separator"

    def test_str_is_render(self, result):
        assert str(result) == result.render()


class TestFormatTable:
    def test_none_values_render_as_dash(self):
        from repro.bench.report import format_table

        result = FigureResult(
            figure="F",
            title="t",
            x_label="x",
            x_values=(1, 2),
            series={"s": [1.0, None]},
        )
        assert "-" in format_table(result).splitlines()[3]

    def test_unit_in_header(self, result):
        assert "[Mops/s]" in result.render().splitlines()[0]

    def test_integer_values_unpadded(self):
        result = FigureResult(
            figure="F",
            title="t",
            x_label="x",
            x_values=("a",),
            series={"s": [42]},
        )
        assert "42" in result.render() and "42.00" not in result.render()

    def test_empty_series_dict(self):
        result = FigureResult(
            figure="F", title="t", x_label="x", x_values=(1,), series={}
        )
        text = result.render()  # must not raise on max() of empty sequences
        assert "F" in text


class TestJsonExport:
    def test_as_dict_round_trips(self, result):
        import json

        data = result.as_dict()
        text = json.dumps(data)
        loaded = json.loads(text)
        assert loaded["figure"] == "Figure X"
        assert loaded["series"]["scalerpc"] == [10.0, 9.5]
        assert loaded["x_values"] == [40, 120]
