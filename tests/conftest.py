"""Repository-wide pytest configuration."""

from hypothesis import HealthCheck, settings

# Property tests drive whole simulations; wall-clock deadlines would flake
# on slow machines without telling us anything about correctness.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
