"""Repository-wide pytest configuration."""

import pytest
from hypothesis import HealthCheck, settings

from repro.analysis import SimSanitizer, enabled_from_env

# Property tests drive whole simulations; wall-clock deadlines would flake
# on slow machines without telling us anything about correctness.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def sim_sanitizer(request):
    """Run every test under SimSanitizer when REPRO_SANITIZE=1.

    The sanitizer instruments the sim kernel and the resource models for
    the duration of one test and fails it if any invariant was violated.
    Tests that deliberately provoke violations opt out with
    ``@pytest.mark.no_sanitize``.
    """
    if not enabled_from_env() or request.node.get_closest_marker("no_sanitize"):
        yield None
        return
    sanitizer = SimSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        report = sanitizer.uninstall()
    assert report.ok, report.render()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "no_sanitize: skip SimSanitizer instrumentation for this test"
    )
