"""Shared fixtures and drivers for ScaleRPC core tests."""

from dataclasses import dataclass, field

import pytest

from repro.core import ScaleRpcConfig, ScaleRpcServer
from repro.rdma import Fabric, Node
from repro.sim import Simulator


@dataclass
class Cluster:
    """A ScaleRPC deployment for tests."""

    sim: Simulator
    fabric: Fabric
    server: ScaleRpcServer
    clients: list = field(default_factory=list)
    machines: list = field(default_factory=list)


def echo_handler(request):
    """Default handler: return the request payload."""
    return request.payload


def make_cluster(
    n_clients: int,
    config: ScaleRpcConfig = None,
    handler=echo_handler,
    handler_cost_fn=None,
    n_machines: int = 2,
    start: bool = True,
) -> Cluster:
    """Build one server plus ``n_clients`` spread over ``n_machines``."""
    sim = Simulator()
    fabric = Fabric(sim)
    server_node = Node(sim, "server", fabric)
    server = ScaleRpcServer(
        server_node,
        handler,
        config=config or ScaleRpcConfig(),
        handler_cost_fn=handler_cost_fn,
    )
    machines = [Node(sim, f"m{i}", fabric) for i in range(n_machines)]
    clients = [server.connect(machines[i % n_machines]) for i in range(n_clients)]
    if start:
        server.start()
    return Cluster(sim, fabric, server, clients, machines)


def closed_loop(cluster: Cluster, client, batch: int, n_batches: int, out: list):
    """A closed-loop driver: post a batch, wait for all responses, repeat.

    Appends (request, response) pairs to ``out``.
    """

    def loop(sim):
        for batch_no in range(n_batches):
            handles = []
            for i in range(batch):
                handle = yield from client.async_call(
                    "echo", payload=(client.client_id, batch_no, i)
                )
                handles.append(handle)
            yield from client.flush()
            responses = yield from client.poll_completions(handles)
            for handle, response in zip(handles, responses):
                out.append((handle.request, response))

    return cluster.sim.process(loop(cluster.sim), name=f"drv{client.client_id}")


def run_until_done(cluster: Cluster, drivers: list, cap_ns: int) -> None:
    """Step the simulation until all driver processes finish (or cap_ns)."""
    sim = cluster.sim
    while sim.peek() is not None and sim.now < cap_ns:
        if all(d.triggered for d in drivers):
            break
        sim.step()


@pytest.fixture
def small_config():
    """A tiny configuration that forces multiple groups quickly."""
    return ScaleRpcConfig(
        group_size=4,
        time_slice_ns=20_000,
        block_size=256,
        blocks_per_client=8,
        n_server_threads=2,
        rebalance_every_slices=1000,  # keep partitions stable unless asked
    )
