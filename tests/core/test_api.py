"""Tests for the shared RPC API pieces: handles, deferred CPU accounting."""

import pytest

from repro.core.api import CallHandle, RpcClientApi
from repro.core.message import RpcRequest
from repro.rdma import Fabric, Node
from repro.sim import Simulator


class _FakeClient(RpcClientApi):
    """Minimal concrete client for exercising the deferred-CPU machinery."""

    def __init__(self, machine, client_id=1):
        self.machine = machine
        self.client_id = client_id

    def async_call(self, rpc_type, payload=None, data_bytes=32):
        raise NotImplementedError

    def flush(self):
        raise NotImplementedError

    def poll_completions(self, handles):
        raise NotImplementedError


@pytest.fixture
def machine():
    sim = Simulator()
    return Node(sim, "m", Fabric(sim), cores=2)


class TestCallHandle:
    def test_latency_none_until_complete(self):
        sim = Simulator()
        handle = CallHandle(RpcRequest(1, "x"), sim.event(), posted_ns=10)
        assert handle.latency_ns is None
        assert not handle.done
        handle.completed_ns = 35
        assert handle.latency_ns == 25


class TestDeferredCpu:
    def test_deferred_work_charges_machine_cores(self, machine):
        sim = machine.sim
        client = _FakeClient(machine)
        client._defer_cpu(1_000)
        client._defer_cpu(1_000)
        sim.run()
        # 2 cores, 2 parallel chunks of 1000 ns -> finished at 1000 ns.
        assert sim.now == 1_000
        assert machine.cpu.total_busy_ns == 1_000

    def test_zero_cost_is_noop(self, machine):
        client = _FakeClient(machine)
        client._defer_cpu(0)
        assert client._deferred_inflight == 0

    def test_backpressure_blocks_when_window_full(self, machine):
        sim = machine.sim
        client = _FakeClient(machine)
        client._deferred_window = 4
        for _ in range(8):  # 2 cores, 1000 ns each: backlog builds
            client._defer_cpu(1_000)
        passed = []

        def poster(sim):
            yield from client._cpu_backpressure()
            passed.append(sim.now)

        sim.process(poster(sim))
        sim.run()
        assert passed, "backpressure must eventually release"
        # 8 jobs / 2 cores = 4000 ns total; the window (4) opens once the
        # backlog has drained below it: at 2000ns inflight is 4, so release
        # happens when it first drops under the window.
        assert passed[0] >= 2_000

    def test_no_backpressure_when_idle(self, machine):
        sim = machine.sim
        client = _FakeClient(machine)
        done = []

        def poster(sim):
            yield from client._cpu_backpressure()
            done.append(sim.now)

        sim.process(poster(sim))
        sim.run()
        assert done == [0]

    def test_poll_cost_scale_default(self, machine):
        assert _FakeClient(machine).poll_cost_scale == 1
