"""Tests for the block-granular message placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msgpool import CACHE_LINE, BlockCursor


class TestBlockCursor:
    def test_right_aligned_tail_lines(self):
        cursor = BlockCursor(base=0, block_size=4096, blocks=4)
        # A 1-line message lands on the last line of block 0.
        assert cursor.next(40) == 4096 - 64
        # Then the last line of block 1, etc.
        assert cursor.next(40) == 2 * 4096 - 64
        assert cursor.next(40) == 3 * 4096 - 64
        assert cursor.next(40) == 4 * 4096 - 64

    def test_wraps_to_first_block(self):
        cursor = BlockCursor(base=0, block_size=256, blocks=2)
        first = cursor.next(32)
        cursor.next(32)
        assert cursor.next(32) == first

    def test_multi_line_message_covers_tail(self):
        cursor = BlockCursor(base=0, block_size=4096, blocks=1)
        addr = cursor.next(150)  # 3 lines
        assert addr == 4096 - 3 * 64
        assert addr % CACHE_LINE == 0

    def test_oversized_message_rejected(self):
        with pytest.raises(ValueError):
            BlockCursor(0, 256, 2).next(300)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCursor(0, 32, 2)
        with pytest.raises(ValueError):
            BlockCursor(0, 256, 0)

    def test_same_slot_reuses_same_lines(self):
        """The hot-line set of a slot is exactly blocks x tail lines —
        the property the LLC-footprint arguments rest on."""
        cursor = BlockCursor(base=1 << 20, block_size=1024, blocks=8)
        first_round = [cursor.next(40) for _ in range(8)]
        second_round = [cursor.next(40) for _ in range(8)]
        assert first_round == second_round

    @given(
        block_size=st.sampled_from([128, 256, 1024, 4096]),
        blocks=st.integers(min_value=1, max_value=16),
        sizes=st.lists(st.integers(min_value=1, max_value=120), min_size=1, max_size=64),
    )
    @settings(max_examples=60)
    def test_addresses_always_inside_own_block(self, block_size, blocks, sizes):
        base = 1 << 16
        cursor = BlockCursor(base, block_size, blocks)
        for index, size in enumerate(sizes):
            addr = cursor.next(size)
            block = index % blocks
            block_start = base + block * block_size
            assert block_start <= addr
            assert addr + size <= block_start + block_size
            assert addr % CACHE_LINE == 0
