"""Fine-grained unit tests of the ScaleRPC client state machine."""

import pytest

from repro.core.client import ClientState
from repro.core.message import (
    ActivationNotice,
    ContextSwitchNotice,
    EndpointEntry,
    PoolBinding,
    RpcResponse,
)
from repro.rdma.node import InboundWrite

from .conftest import make_cluster


@pytest.fixture
def quiet_client(small_config):
    """One client on a stopped server: no scheduler interference."""
    cluster = make_cluster(1, config=small_config, start=False)
    return cluster, cluster.clients[0]


def inbound(client, payload):
    return InboundWrite(
        addr=client.responses.range.base,
        size=40,
        payload=payload,
        imm_data=None,
        src_qp_num=0,
        time_ns=client.sim.now,
    )


def binding_for(cluster, slot=0):
    server = cluster.server
    return PoolBinding(
        pool_base=server.pools.processing.base,
        slot_base=server.pools.processing.slot_base(slot),
        slot_bytes=server.config.slot_bytes,
        epoch=1,
    )


class TestStateTransitions:
    def test_starts_idle(self, quiet_client):
        cluster, client = quiet_client
        assert client.state is ClientState.IDLE

    def test_flush_announces_and_enters_warmup(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim

        def driver(sim):
            yield from client.async_call("op", payload=1)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        assert client.state is ClientState.WARMUP
        assert client.announcements == 1
        # The staged batch sits at the staging address for warmup reads.
        staged = client.machine.load(client.staging.range.base)
        assert [r.payload for r in staged] == [1]

    def test_response_with_binding_enters_process(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim
        handles = []

        def driver(sim):
            handle = yield from client.async_call("op", payload=1)
            handles.append(handle)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        response = RpcResponse(
            req_id=handles[0].request.req_id,
            client_id=client.client_id,
            payload="done",
            binding=binding_for(cluster),
        )
        client._on_response(inbound(client, response))
        assert client.state is ClientState.PROCESS
        assert handles[0].response.payload == "done"
        assert client.outstanding == 0

    def test_activation_notice_reposts_outstanding(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim

        def driver(sim):
            yield from client.async_call("op", payload=1)
            yield from client.async_call("op", payload=2)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        before = client.qp.sends_posted
        client._on_response(inbound(client, ActivationNotice(
            binding=binding_for(cluster), epoch=1)))
        assert client.state is ClientState.PROCESS
        sim.run(until=sim.now + 100_000)
        # Both outstanding requests were reposted directly.
        assert client.qp.sends_posted >= before + 2

    def test_context_switch_notice_idles_and_reannounces(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim

        def driver(sim):
            yield from client.async_call("op", payload=1)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        announcements = client.announcements
        client._on_response(inbound(client, ContextSwitchNotice(epoch=2)))
        assert client.state is ClientState.IDLE
        sim.run(until=sim.now + 100_000)
        # Outstanding work means a re-announcement (after the debounce).
        assert client.announcements == announcements + 1
        assert client.state is ClientState.WARMUP

    def test_switch_notice_without_outstanding_stays_idle(self, quiet_client):
        cluster, client = quiet_client
        client._on_response(inbound(client, ContextSwitchNotice(epoch=2)))
        cluster.sim.run(until=100_000)
        assert client.state is ClientState.IDLE
        assert client.announcements == 0

    def test_failed_response_triggers_retry(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim
        handles = []

        def driver(sim):
            handle = yield from client.async_call("op", payload=1)
            handles.append(handle)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        failed = RpcResponse(
            req_id=handles[0].request.req_id,
            client_id=client.client_id,
            failed=True,
        )
        announcements = client.announcements
        client._on_response(inbound(client, failed))
        sim.run(until=sim.now + 100_000)
        assert client.failed_retries == 1
        # Still outstanding (no success yet), re-announced for pickup.
        assert client.outstanding == 1
        assert client.announcements == announcements + 1

    def test_unknown_response_ignored(self, quiet_client):
        cluster, client = quiet_client
        stray = RpcResponse(req_id=424242, client_id=client.client_id, payload="?")
        client._on_response(inbound(client, stray))
        assert client.completed == 0

    def test_announce_includes_message_sizes(self, quiet_client):
        cluster, client = quiet_client
        sim = cluster.sim
        captured = {}

        def driver(sim):
            yield from client.async_call("op", payload=1, data_bytes=100)
            yield from client.async_call("op", payload=2, data_bytes=50)
            yield from client.flush()

        sim.process(driver(sim))
        sim.run(until=100_000)
        entry = cluster.server.node.load(
            cluster.server.endpoint_addr(client.client_id)
        )
        assert isinstance(entry, EndpointEntry)
        assert entry.batch_size == 2
        assert entry.message_sizes == (108, 58)  # +8-byte headers
