"""Unit tests for ScaleRpcConfig and the message layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ScaleRpcConfig, wire_size, layout_in_block
from repro.core.config import CpuCostModel
from repro.core.message import (
    HEADER_BYTES,
    VALID_BYTES,
    RpcRequest,
)


class TestScaleRpcConfig:
    def test_paper_defaults(self):
        config = ScaleRpcConfig()
        assert config.group_size == 40
        assert config.time_slice_ns == 100_000
        assert config.block_size == 4096
        assert config.blocks_per_client == 20

    def test_pool_sized_for_largest_legal_group(self):
        config = ScaleRpcConfig(group_size=40)
        assert config.pool_slots == 60  # 1.5x default
        assert config.pool_bytes == 60 * 20 * 4096

    def test_group_bounds_are_half_to_three_halves(self):
        config = ScaleRpcConfig(group_size=40)
        assert config.group_bounds() == (20, 60)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0},
            {"time_slice_ns": 0},
            {"block_size": 32},
            {"blocks_per_client": 0},
            {"n_server_threads": 0},
            {"group_min_ratio": 0.0},
            {"group_max_ratio": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScaleRpcConfig(**kwargs)

    def test_cost_model_asymmetry(self):
        costs = CpuCostModel()
        rc_post, rc_poll = costs.client_cost(uses_cq_polling=False)
        ud_post, ud_poll = costs.client_cost(uses_cq_polling=True)
        assert ud_post > rc_post
        assert ud_poll > rc_poll


class TestMessageLayout:
    def test_wire_size_adds_header(self):
        assert wire_size(32) == 32 + HEADER_BYTES

    def test_wire_size_rejects_negative(self):
        with pytest.raises(ValueError):
            wire_size(-1)

    def test_right_aligned_layout(self):
        write_addr, valid_addr = layout_in_block(0x1000, 4096, 32)
        assert write_addr == 0x1000 + 4096 - (32 + HEADER_BYTES)
        assert valid_addr == 0x1000 + 4096 - VALID_BYTES
        # Valid is the *last* field: the write covers it last.
        assert valid_addr >= write_addr

    def test_oversized_message_rejected(self):
        with pytest.raises(ValueError):
            layout_in_block(0, 64, 60)

    @given(
        block=st.sampled_from([256, 1024, 4096]),
        data=st.integers(min_value=0, max_value=200),
    )
    def test_layout_always_inside_block(self, block, data):
        write_addr, valid_addr = layout_in_block(0, block, data)
        assert 0 <= write_addr
        assert valid_addr + VALID_BYTES == block

    def test_request_ids_unique(self):
        a = RpcRequest(1, "x")
        b = RpcRequest(1, "x")
        assert a.req_id != b.req_id

    def test_request_wire_bytes(self):
        assert RpcRequest(1, "x", data_bytes=100).wire_bytes == 100 + HEADER_BYTES
