"""End-to-end ScaleRPC behaviour: correctness across groups and switches."""


from repro.core.client import ClientState

from .conftest import closed_loop, make_cluster, run_until_done


class TestSingleGroup:
    def test_sync_call_roundtrip(self, small_config):
        cluster = make_cluster(1, config=small_config)
        result = {}

        def driver(sim):
            response = yield from cluster.clients[0].sync_call("echo", payload="ping")
            result["response"] = response

        cluster.sim.process(driver(cluster.sim))
        cluster.sim.run(until=2_000_000)
        assert result["response"].payload == "ping"

    def test_all_batches_complete(self, small_config):
        cluster = make_cluster(3, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=4, n_batches=10, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 20_000_000)
        assert len(out) == 3 * 4 * 10
        for request, response in out:
            assert response.payload == request.payload
            assert response.req_id == request.req_id

    def test_single_group_never_switches(self, small_config):
        cluster = make_cluster(3, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=2, n_batches=20, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 20_000_000)
        assert cluster.server.stats.context_switches == 0

    def test_clients_reach_process_state(self, small_config):
        cluster = make_cluster(2, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=2, n_batches=50, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 5_000_000)
        assert any(c.state is ClientState.PROCESS for c in cluster.clients)


class TestMultiGroup:
    def test_all_groups_served(self, small_config):
        n = 12  # 3 groups of 4
        cluster = make_cluster(n, config=small_config)
        assert len(cluster.server.groups.groups) == 3
        out = []
        drivers = [
            closed_loop(cluster, client, batch=4, n_batches=6, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 80_000_000)
        assert len(out) == n * 4 * 6
        for request, response in out:
            assert response.payload == request.payload

    def test_context_switches_happen(self, small_config):
        cluster = make_cluster(8, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=2, n_batches=30, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 80_000_000)
        assert cluster.server.stats.context_switches > 3

    def test_warmup_fetches_pipeline_requests(self, small_config):
        cluster = make_cluster(8, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=4, n_batches=20, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 80_000_000)
        assert cluster.server.stats.warmup_fetches > 0
        assert cluster.server.stats.warmup_requests >= cluster.server.stats.warmup_fetches

    def test_explicit_notices_for_silent_clients(self, small_config):
        # 8 clients form 2 groups but only one client is active: the other
        # group members get explicit context-switch notices.
        cluster = make_cluster(8, config=small_config)
        out = []
        drivers = [closed_loop(cluster, cluster.clients[0], batch=2, n_batches=30, out=out)]
        run_until_done(cluster, drivers, 80_000_000)
        assert cluster.server.stats.explicit_notices > 0

    def test_responses_match_under_heavy_concurrency(self, small_config):
        cluster = make_cluster(16, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=8, n_batches=8, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 300_000_000)
        assert len(out) == 16 * 8 * 8
        mismatched = [1 for req, resp in out if resp.payload != req.payload]
        assert not mismatched

    def test_no_request_lost_across_switches(self, small_config):
        """Requests racing a context switch are retried, never lost."""
        cluster = make_cluster(12, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=1, n_batches=40, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 400_000_000)
        unfinished = [d for d in drivers if not d.triggered]
        assert not unfinished
        assert len(out) == 12 * 40


class TestVirtualizedMapping:
    def test_pool_memory_is_client_count_independent(self, small_config):
        few = make_cluster(4, config=small_config, start=False)
        many = make_cluster(16, config=small_config, start=False)
        pool_bytes = lambda c: sum(
            p.region.range.size for p in c.server.pools.pools
        )
        assert pool_bytes(few) == pool_bytes(many)

    def test_groups_share_the_same_physical_slots(self, small_config):
        cluster = make_cluster(8, config=small_config)
        out = []
        drivers = [
            closed_loop(cluster, client, batch=2, n_batches=10, out=out)
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 80_000_000)
        # Two groups, one pool pair: the registered pool memory is exactly
        # two pools (huge-page rounded), not per-client regions.
        from repro.memsys import HUGE_PAGE_SIZE

        pools = cluster.server.pools.pools
        rounded = -(-small_config.pool_bytes // HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE
        total = sum(p.region.range.size for p in pools)
        assert total == 2 * rounded


class TestLatencyShape:
    def test_grouping_creates_bimodal_latency(self, small_config):
        """Most calls finish fast; calls crossing a switch wait ~a slice."""
        cluster = make_cluster(8, config=small_config)
        latencies = []

        def driver(sim, client):
            for _ in range(30):
                handle = yield from client.async_call("echo", payload=0)
                yield from client.flush()
                yield from client.poll_completions([handle])
                latencies.append(handle.latency_ns)

        drivers = [
            cluster.sim.process(driver(cluster.sim, client))
            for client in cluster.clients
        ]
        run_until_done(cluster, drivers, 400_000_000)
        assert cluster.server.stats.context_switches > 0
        latencies.sort()
        fast = latencies[len(latencies) // 4]  # 25th percentile
        slow = latencies[-len(latencies) // 10]  # 90th percentile
        # The slow mode reflects waiting out other groups' slices: at
        # least one full slice longer than the fast mode.
        assert slow >= fast + small_config.time_slice_ns
