"""Unit tests for connection grouping."""

import pytest

from repro.core import ScaleRpcConfig
from repro.core.grouping import ClientContext, ConnectionGroup, GroupManager


def ctx(client_id):
    return ClientContext(
        client_id=client_id,
        qp=None,
        response_base=0,
        response_bytes=1024,
        staging_base=0,
    )


@pytest.fixture
def manager():
    return GroupManager(ScaleRpcConfig(group_size=4))


class TestGroupPlacement:
    def test_fills_groups_to_default_size(self, manager):
        for i in range(9):
            manager.add_client(ctx(i))
        sizes = [len(g) for g in manager.groups]
        assert sizes == [4, 4, 1]

    def test_slots_are_indices_within_group(self, manager):
        for i in range(6):
            manager.add_client(ctx(i))
        for group in manager.groups:
            assert [m.slot for m in group.members] == list(range(len(group)))

    def test_duplicate_client_rejected(self, manager):
        manager.add_client(ctx(1))
        with pytest.raises(ValueError):
            manager.add_client(ctx(1))

    def test_remove_compacts_slots(self, manager):
        contexts = [ctx(i) for i in range(4)]
        for c in contexts:
            manager.add_client(c)
        manager.remove_client(1)
        group = manager.groups[0]
        assert [m.client_id for m in group.members] == [0, 2, 3]
        assert [m.slot for m in group.members] == [0, 1, 2]

    def test_remove_last_member_drops_group(self, manager):
        manager.add_client(ctx(1))
        manager.remove_client(1)
        assert manager.groups == []
        assert manager.current_group() is None


class TestRotation:
    def test_round_robin(self, manager):
        for i in range(12):  # 3 groups
            manager.add_client(ctx(i))
        first = manager.current_group()
        second = manager.advance()
        third = manager.advance()
        assert len({first.gid, second.gid, third.gid}) == 3
        assert manager.advance() is first

    def test_peek_next(self, manager):
        for i in range(8):
            manager.add_client(ctx(i))
        current = manager.current_group()
        upcoming = manager.peek_next()
        assert upcoming is not current
        assert manager.advance() is upcoming

    def test_single_group_rotation(self, manager):
        manager.add_client(ctx(1))
        only = manager.current_group()
        assert manager.advance() is only
        assert manager.peek_next() is only


class TestBounds:
    def test_out_of_bounds_detects_oversize(self):
        manager = GroupManager(ScaleRpcConfig(group_size=4))
        group = ConnectionGroup(time_slice_ns=1)
        for i in range(7):  # above 1.5 * 4 = 6
            group.add(ctx(i))
        manager.groups = [group]
        manager.clients = {m.client_id: m for m in group.members}
        assert manager.out_of_bounds()

    def test_single_small_group_is_legal(self, manager):
        manager.add_client(ctx(1))
        assert not manager.out_of_bounds()

    def test_undersized_among_many_is_out_of_bounds(self, manager):
        for i in range(5):  # groups of 4 and 1; 1 < 4/2
            manager.add_client(ctx(i))
        assert manager.out_of_bounds()


class TestRebuild:
    def test_rebuild_replaces_partition(self, manager):
        members = [ctx(i) for i in range(6)]
        for c in members:
            manager.add_client(c)
        manager.rebuild([members[:3], members[3:]], [100, 200])
        assert [len(g) for g in manager.groups] == [3, 3]
        assert manager.groups[0].time_slice_ns == 100
        assert manager.groups[1].time_slice_ns == 200
        assert members[4].slot == 1

    def test_rebuild_rejects_oversized_group(self, manager):
        members = [ctx(i) for i in range(7)]
        for c in members:
            manager.add_client(c)
        with pytest.raises(ValueError):
            manager.rebuild([members], [100])  # 7 > pool_slots = 6

    def test_rebuild_requires_matching_slices(self, manager):
        manager.add_client(ctx(1))
        with pytest.raises(ValueError):
            manager.rebuild([[manager.clients[1]]], [])


class TestPriorityCounters:
    def test_close_slice_computes_priority(self):
        c = ctx(1)
        c.record_request(32)
        c.record_request(32)
        c.close_slice(smoothing=1.0)
        assert c.priority == pytest.approx(2 / 32)
        assert c.slice_requests == 0

    def test_idle_slice_decays_priority(self):
        c = ctx(1)
        c.record_request(32)
        c.close_slice(smoothing=0.5)
        busy = c.priority
        c.close_slice(smoothing=0.5)
        assert c.priority == pytest.approx(busy / 2)

    def test_small_requests_rank_higher(self):
        small, large = ctx(1), ctx(2)
        for __ in range(10):
            small.record_request(32)
            large.record_request(4096)
        small.close_slice()
        large.close_slice()
        assert small.priority > large.priority
