"""Unit tests for message pools and virtualized mapping plumbing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScaleRpcConfig
from repro.core.msgpool import CACHE_LINE, PhysicalPool, PoolPair, SlotCursor
from repro.rdma import Fabric, Node
from repro.sim import Simulator


@pytest.fixture
def node():
    sim = Simulator()
    return Node(sim, "srv", Fabric(sim))


@pytest.fixture
def config():
    return ScaleRpcConfig(group_size=4, block_size=256, blocks_per_client=4)


class TestSlotCursor:
    def test_advances_by_lines(self):
        cursor = SlotCursor(0, 1024)
        assert cursor.next(32) == 0
        assert cursor.next(32) == 64
        assert cursor.next(100) == 128
        assert cursor.next(32) == 256

    def test_wraps_without_straddle(self):
        cursor = SlotCursor(0, 256)  # 4 lines
        cursor.next(64)
        cursor.next(64)
        cursor.next(64)
        # 1 line left; a 2-line message wraps to base.
        assert cursor.next(128) == 0

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            SlotCursor(0, 256).next(512)

    def test_rejects_tiny_slot(self):
        with pytest.raises(ValueError):
            SlotCursor(0, 32)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=512), max_size=100))
    @settings(max_examples=50)
    def test_addresses_always_in_slot_and_aligned(self, sizes):
        base, size = 4096, 2048
        cursor = SlotCursor(base, size)
        for message in sizes:
            addr = cursor.next(message)
            assert base <= addr < base + size
            assert addr % CACHE_LINE == 0
            assert addr + message <= base + size


class TestPhysicalPool:
    def test_slots_are_disjoint_and_cover_pool(self, node, config):
        pool = PhysicalPool(node, config, 0)
        bases = [pool.slot_base(s) for s in range(config.pool_slots)]
        assert len(set(bases)) == config.pool_slots
        for i, base in enumerate(bases):
            assert base == pool.base + i * config.slot_bytes

    def test_slot_of_addr_roundtrip(self, node, config):
        pool = PhysicalPool(node, config, 0)
        for slot in range(config.pool_slots):
            addr = pool.slot_base(slot) + 64
            assert pool.slot_of_addr(addr) == slot

    def test_slot_of_addr_rejects_outside(self, node, config):
        pool = PhysicalPool(node, config, 0)
        with pytest.raises(ValueError):
            pool.slot_of_addr(pool.base - 1)

    def test_slot_base_bounds(self, node, config):
        pool = PhysicalPool(node, config, 0)
        with pytest.raises(IndexError):
            pool.slot_base(config.pool_slots)

    def test_pool_registered_for_remote_write(self, node, config):
        from repro.rdma import Access

        pool = PhysicalPool(node, config, 0)
        region = node.mr_table.check(pool.base, 64, Access.REMOTE_WRITE)
        assert region.range.contains(pool.base)


class TestPoolPair:
    def test_swap_exchanges_roles(self, node, config):
        pair = PoolPair(node, config)
        processing, warmup = pair.processing, pair.warmup
        assert processing is not warmup
        pair.swap()
        assert pair.processing is warmup
        assert pair.warmup is processing

    def test_epoch_increments(self, node, config):
        pair = PoolPair(node, config)
        assert pair.epoch == 0
        assert pair.swap() == 1
        assert pair.swap() == 2

    def test_pool_of_addr(self, node, config):
        pair = PoolPair(node, config)
        for pool in pair.pools:
            assert pair.pool_of_addr(pool.base) is pool
        assert pair.pool_of_addr(64) is None

    def test_total_memory_is_two_pools_only(self, node, config):
        pair = PoolPair(node, config)
        total = sum(p.region.range.size for p in pair.pools)
        # Virtualized mapping: memory does not scale with client count.
        assert total >= 2 * config.pool_bytes
        assert total <= 2 * (config.pool_bytes + 2 * 1024 * 1024)  # page round
