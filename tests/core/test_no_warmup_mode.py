"""The no-warmup baseline: activation notices + direct reposting."""

import pytest

from repro.core import ScaleRpcConfig
from repro.core.client import ClientState

from .conftest import closed_loop, make_cluster, run_until_done


@pytest.fixture
def no_warmup_config():
    return ScaleRpcConfig(
        group_size=4,
        time_slice_ns=20_000,
        block_size=256,
        blocks_per_client=8,
        n_server_threads=2,
        warmup_enabled=False,
        rebalance_every_slices=1000,
    )


class TestActivationPath:
    def test_all_calls_complete_without_warmup(self, no_warmup_config):
        cluster = make_cluster(8, config=no_warmup_config)
        out = []
        drivers = [
            closed_loop(cluster, c, batch=3, n_batches=10, out=out)
            for c in cluster.clients
        ]
        run_until_done(cluster, drivers, 400_000_000)
        assert len(out) == 8 * 3 * 10
        assert all(resp.payload == req.payload for req, resp in out)

    def test_no_warmup_fetches_happen(self, no_warmup_config):
        cluster = make_cluster(8, config=no_warmup_config)
        out = []
        drivers = [
            closed_loop(cluster, c, batch=2, n_batches=10, out=out)
            for c in cluster.clients
        ]
        run_until_done(cluster, drivers, 400_000_000)
        # The server never RDMA-reads request batches in this mode...
        assert cluster.server.stats.warmup_fetches == 0
        # ...and still switches groups.
        assert cluster.server.stats.context_switches > 0

    def test_clients_reach_process_via_activation(self, no_warmup_config):
        cluster = make_cluster(8, config=no_warmup_config)
        out = []
        drivers = [
            closed_loop(cluster, c, batch=2, n_batches=30, out=out)
            for c in cluster.clients
        ]
        # Step partway: someone must be in PROCESS through an activation.
        sim = cluster.sim
        while sim.peek() is not None and sim.now < 300_000:
            sim.step()
        assert any(c.state is ClientState.PROCESS for c in cluster.clients)
        run_until_done(cluster, drivers, 400_000_000)

    def test_single_group_no_warmup(self, no_warmup_config):
        cluster = make_cluster(3, config=no_warmup_config)
        out = []
        drivers = [
            closed_loop(cluster, c, batch=2, n_batches=10, out=out)
            for c in cluster.clients
        ]
        run_until_done(cluster, drivers, 100_000_000)
        assert len(out) == 3 * 2 * 10
        assert cluster.server.stats.context_switches == 0
