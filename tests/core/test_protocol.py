"""The declarative group-activation protocol shared by server/client/checker."""

import pytest

from repro.core.protocol import (
    CLIENT_TRANSITIONS,
    ClientState,
    ProtocolError,
    ProtocolEvent,
    client_transition,
    fresh_activation,
)


def test_announce_from_idle_enters_warmup():
    assert client_transition(ClientState.IDLE, ProtocolEvent.ANNOUNCE) is ClientState.WARMUP


def test_reannounce_while_warming_is_legal():
    assert client_transition(ClientState.WARMUP, ProtocolEvent.ANNOUNCE) is ClientState.WARMUP


def test_activation_reaches_process_from_any_state():
    for state in ClientState:
        assert client_transition(state, ProtocolEvent.ACTIVATE) is ClientState.PROCESS


def test_context_switch_returns_to_idle_from_any_state():
    for state in ClientState:
        assert client_transition(state, ProtocolEvent.CONTEXT_SWITCH) is ClientState.IDLE


def test_announce_while_processing_is_illegal():
    with pytest.raises(ProtocolError):
        # The illegal pair is the point of the test.
        client_transition(ClientState.PROCESS, ProtocolEvent.ANNOUNCE)  # flowlint: ignore[proto-transition]


def test_transition_table_is_the_single_source_of_truth():
    # Every (state, event) pair is either in the table or raises; there is
    # no silent default.
    for state in ClientState:
        for event in ProtocolEvent:
            if (state, event) in CLIENT_TRANSITIONS:
                client_transition(state, event)
            else:
                with pytest.raises(ProtocolError):
                    client_transition(state, event)


def test_fresh_activation_is_strictly_monotone():
    assert fresh_activation(-1, 0)
    assert fresh_activation(0, 1)
    assert not fresh_activation(1, 1)  # duplicate notice
    assert not fresh_activation(2, 1)  # stale notice
