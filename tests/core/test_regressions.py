"""Regression tests for scheduling bugs found during development."""


from repro.core import ScaleRpcConfig
from repro.core.grouping import ClientContext, GroupManager

from .conftest import closed_loop, make_cluster, run_until_done


def ctx(client_id):
    return ClientContext(
        client_id=client_id, qp=None, response_base=0, response_bytes=1024,
        staging_base=0,
    )


class TestRotationFairnessAcrossRebuilds:
    """Rebuilding groups must not starve any group of warmup turns.

    The original implementation reset the rotation cursor to zero on every
    rebuild; with rebuilds every k slices and more than k groups, some
    group indices were never selected and their clients hung forever.
    """

    def test_every_index_selected_under_frequent_rebuilds(self):
        manager = GroupManager(ScaleRpcConfig(group_size=4))
        members = [ctx(i) for i in range(12)]  # 3 groups
        for c in members:
            manager.add_client(c)
        selected = set()
        for _round in range(12):
            # Simulate: serve one slice, then rebuild (worst case).
            nxt = manager.advance()
            selected.add(tuple(sorted(m.client_id for m in nxt.members)))
            partition = [members[0:4], members[4:8], members[8:12]]
            manager.rebuild(partition, [100, 100, 100])
        assert len(selected) == 3, "every group must get warmup turns"

    def test_rebuild_rotation_changes_between_rebuilds(self):
        manager = GroupManager(ScaleRpcConfig(group_size=4))
        members = [ctx(i) for i in range(12)]
        for c in members:
            manager.add_client(c)
        partition = [members[0:4], members[4:8], members[8:12]]
        starts = []
        for _ in range(6):
            manager.rebuild(partition, [100, 100, 100])
            starts.append(manager.current_group().gid)
        assert len(set(starts)) > 1

    def test_aggressive_rebalance_no_client_starves(self):
        """End-to-end: the original starvation scenario completes."""
        config = ScaleRpcConfig(
            group_size=4, time_slice_ns=20_000, block_size=256,
            blocks_per_client=8, n_server_threads=2,
            dynamic_scheduling=True, rebalance_every_slices=2,
        )
        cluster = make_cluster(12, config=config)
        out = []
        drivers = [
            closed_loop(cluster, c, batch=2, n_batches=8, out=out)
            for c in cluster.clients
        ]
        run_until_done(cluster, drivers, 300_000_000)
        assert all(d.triggered for d in drivers)
        assert len(out) == 12 * 2 * 8


class TestDrainAdmission:
    """During the drain, new endpoint entries must not be admitted (the
    original code fetched them back into the processing pool, re-feeding
    the drain forever — a livelock)."""

    def test_entries_during_drain_stay_pending(self, small_config):
        cluster = make_cluster(8, config=small_config)
        server = cluster.server
        server.start if False else None
        # Force the draining state and inject an entry for a serving client.
        from repro.core.message import EndpointEntry
        from repro.rdma.node import InboundWrite

        ctx0 = next(iter(server.groups.clients.values()))
        server._serving_ids = {ctx0.client_id}
        server._serve_slots = {ctx0.client_id: 0}
        server._draining = True
        entry = EndpointEntry(
            client_id=ctx0.client_id, req_addr=ctx0.staging_base,
            batch_size=1, total_bytes=40, message_sizes=(40,),
        )
        server._on_entry_write(InboundWrite(
            addr=server.endpoint_addr(ctx0.client_id), size=16,
            payload=entry, imm_data=None, src_qp_num=0, time_ns=0,
        ))
        # Pending, but no fetch was spawned (no new work admitted).
        assert ctx0.pending_entry is entry
        assert all(len(s) == 0 for s in server._worker_stores)


class TestStragglerGrace:
    """Requests racing the pool swap are served from the swapped-out pool
    within the grace window instead of being dropped."""

    def test_straggler_served_within_grace(self, small_config):
        cluster = make_cluster(8, config=small_config)
        server = cluster.server
        from repro.core.message import RpcRequest
        from repro.rdma.node import InboundWrite

        ctx0 = next(iter(server.groups.clients.values()))
        # Simulate the post-swap state: ctx0 was serving, now isn't.
        server._prev_serving_ids = {ctx0.client_id}
        server._prev_serve_slots = {ctx0.client_id: 0}
        server._swap_time_ns = cluster.sim.now
        server._serving_ids = set()
        request = RpcRequest(ctx0.client_id, "echo", payload=1)
        warmup_pool = server.pools.warmup
        server._on_pool_write(InboundWrite(
            addr=warmup_pool.slot_base(0), size=40, payload=request,
            imm_data=None, src_qp_num=0, time_ns=cluster.sim.now,
        ))
        assert sum(len(s) for s in server._worker_stores) == 1
        assert server.stats.stale_drops == 0

    def test_straggler_dropped_after_grace(self, small_config):
        cluster = make_cluster(8, config=small_config)
        server = cluster.server
        from repro.core.message import RpcRequest
        from repro.rdma.node import InboundWrite

        ctx0 = next(iter(server.groups.clients.values()))
        server._prev_serving_ids = {ctx0.client_id}
        server._prev_serve_slots = {ctx0.client_id: 0}
        server._swap_time_ns = -1_000_000  # long ago
        server._serving_ids = set()
        request = RpcRequest(ctx0.client_id, "echo", payload=1)
        server._on_pool_write(InboundWrite(
            addr=server.pools.warmup.slot_base(0), size=40, payload=request,
            imm_data=None, src_qp_num=0, time_ns=cluster.sim.now,
        ))
        assert server.stats.stale_drops == 1
