"""Unit tests for the priority-based scheduler."""


from repro.core import ScaleRpcConfig
from repro.core.grouping import ClientContext, GroupManager
from repro.core.scheduler import PriorityScheduler


def ctx(client_id, priority=0.0):
    c = ClientContext(
        client_id=client_id,
        qp=None,
        response_base=0,
        response_bytes=1024,
        staging_base=0,
    )
    c.priority = priority
    return c


def build(n, group_size=4, dynamic=True, **kwargs):
    config = ScaleRpcConfig(
        group_size=group_size, dynamic_scheduling=dynamic, **kwargs
    )
    manager = GroupManager(config)
    for i in range(n):
        manager.add_client(ctx(i, priority=float(i)))
    return config, manager, PriorityScheduler(config, manager)


class TestRebalanceTriggers:
    def test_no_rebalance_when_fresh(self):
        _, _, sched = build(8)
        assert not sched.should_rebalance()

    def test_rebalance_after_enough_slices(self):
        config, manager, sched = build(8, rebalance_every_slices=3)
        group = manager.current_group()
        for _ in range(3):
            sched.close_slice(group.members)
        assert sched.should_rebalance()

    def test_static_mode_ignores_slice_counter(self):
        config, manager, sched = build(8, dynamic=False, rebalance_every_slices=1)
        sched.close_slice(manager.current_group().members)
        assert not sched.should_rebalance()

    def test_out_of_bounds_triggers_even_static(self):
        config, manager, sched = build(5, dynamic=False)  # groups 4 + 1
        assert sched.should_rebalance()

    def test_single_group_never_time_triggers(self):
        config, manager, sched = build(3, rebalance_every_slices=1)
        sched.close_slice(manager.current_group().members)
        assert not sched.should_rebalance()


class TestPartition:
    def test_dynamic_priority_group_is_smaller_with_longer_slice(self):
        config, manager, sched = build(12, group_size=4)
        sched.rebalance()
        groups = manager.groups
        assert len(groups[0]) == 3  # 0.75 * 4
        # Slices scale with aggregate priority: busiest first, clamped.
        slices = [g.time_slice_ns for g in groups]
        assert slices[0] > slices[-1]
        assert slices[0] <= int(config.time_slice_ns * config.priority_slice_max_ratio)
        assert slices[-1] >= int(config.time_slice_ns * config.priority_slice_min_ratio)

    def test_dynamic_orders_by_priority(self):
        config, manager, sched = build(8, group_size=4)
        sched.rebalance()
        top = manager.groups[0].members
        # Highest priorities (ids 7, 6, 5) first.
        assert sorted(m.client_id for m in top) == [5, 6, 7]

    def test_static_orders_by_client_id(self):
        config, manager, sched = build(8, group_size=4, dynamic=False)
        sched.rebalance()
        assert [m.client_id for m in manager.groups[0].members] == [0, 1, 2, 3]
        assert all(len(g) == 4 for g in manager.groups)

    def test_undersized_tail_merges(self):
        # 9 clients, dynamic: 3 (priority) + 4 + 2; tail 2 >= min 2 -> kept.
        config, manager, sched = build(9, group_size=4)
        sched.rebalance()
        assert [len(g) for g in manager.groups] == [3, 4, 2]
        # 8 clients: 3 + 4 + 1; tail 1 < 2 merges into predecessor.
        config, manager, sched = build(8, group_size=4)
        sched.rebalance()
        assert [len(g) for g in manager.groups] == [3, 5]

    def test_partition_covers_every_client_exactly_once(self):
        config, manager, sched = build(23, group_size=4)
        sched.rebalance()
        seen = [m.client_id for g in manager.groups for m in g.members]
        assert sorted(seen) == list(range(23))

    def test_fewer_than_group_size_yields_single_group(self):
        config, manager, sched = build(3, group_size=4)
        sched.rebalance()
        assert len(manager.groups) == 1
        assert manager.groups[0].time_slice_ns == config.time_slice_ns

    def test_groups_respect_pool_capacity(self):
        config, manager, sched = build(30, group_size=4)
        sched.rebalance()
        assert all(len(g) <= config.pool_slots for g in manager.groups)

    def test_maybe_rebalance_counts(self):
        config, manager, sched = build(8, rebalance_every_slices=1)
        sched.close_slice(manager.current_group().members)
        assert sched.maybe_rebalance()
        assert sched.rebalances == 1
        assert not sched.maybe_rebalance()
