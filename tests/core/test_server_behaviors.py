"""Server-side behaviours: legacy mode, rebalancing, churn, dedup."""


from repro.core import ScaleRpcConfig

from .conftest import closed_loop, make_cluster, run_until_done


class TestLegacyMode:
    """Paper Section 3.5: long RPCs fail once, then run on a dedicated
    legacy thread."""

    def _cluster(self, threshold_ns=30_000, cost_ns=100_000):
        config = ScaleRpcConfig(
            group_size=4,
            time_slice_ns=20_000,
            block_size=256,
            blocks_per_client=8,
            n_server_threads=2,
            long_rpc_threshold_ns=threshold_ns,
        )
        cost_fn = lambda req: cost_ns if req.rpc_type == "slow" else 0
        return make_cluster(2, config=config, handler_cost_fn=cost_fn)

    def test_long_rpc_fails_once_then_completes_in_legacy(self):
        cluster = self._cluster()
        outcome = {}

        def driver(sim):
            response = yield from cluster.clients[0].sync_call("slow", payload="x")
            outcome["payload"] = response.payload

        driver_proc = cluster.sim.process(driver(cluster.sim))
        run_until_done(cluster, [driver_proc], 100_000_000)
        assert outcome["payload"] == "x"
        stats = cluster.server.stats
        assert stats.failed_long_rpcs == 1
        assert stats.legacy_completed == 1
        assert cluster.clients[0].failed_retries == 1
        assert "slow" in cluster.server._legacy_types

    def test_subsequent_long_rpcs_skip_the_failure(self):
        cluster = self._cluster()
        results = []

        def driver(sim):
            for i in range(3):
                response = yield from cluster.clients[0].sync_call("slow", payload=i)
                results.append(response.payload)

        driver_proc = cluster.sim.process(driver(cluster.sim))
        run_until_done(cluster, [driver_proc], 200_000_000)
        assert results == [0, 1, 2]
        # Only the very first sighting fails.
        assert cluster.server.stats.failed_long_rpcs == 1
        assert cluster.server.stats.legacy_completed == 3

    def test_short_rpcs_never_fail(self):
        cluster = self._cluster()
        out = []
        drivers = [closed_loop(cluster, c, batch=2, n_batches=10, out=out) for c in cluster.clients]
        run_until_done(cluster, drivers, 100_000_000)
        assert cluster.server.stats.failed_long_rpcs == 0
        assert cluster.server.stats.legacy_completed == 0


class TestChurn:
    def test_disconnect_mid_run(self, small_config):
        cluster = make_cluster(8, config=small_config)
        out = []
        survivors = cluster.clients[:6]
        drivers = [closed_loop(cluster, c, batch=2, n_batches=15, out=out) for c in survivors]

        def leaver(sim):
            yield sim.timeout(100_000)
            cluster.clients[6].disconnect()
            cluster.clients[7].disconnect()

        cluster.sim.process(leaver(cluster.sim))
        run_until_done(cluster, drivers, 200_000_000)
        assert len(out) == 6 * 2 * 15
        assert cluster.server.groups.n_clients == 6

    def test_late_joiner_gets_service(self, small_config):
        cluster = make_cluster(4, config=small_config)
        out = []
        drivers = [closed_loop(cluster, c, batch=2, n_batches=10, out=out) for c in cluster.clients]
        late = {}

        def joiner(sim):
            yield sim.timeout(150_000)
            client = cluster.server.connect(cluster.machines[0])
            response = yield from client.sync_call("echo", payload="late")
            late["payload"] = response.payload

        joiner_proc = cluster.sim.process(joiner(cluster.sim))
        run_until_done(cluster, [*drivers, joiner_proc], 200_000_000)
        assert late["payload"] == "late"


class TestRebalanceUnderLoad:
    def test_dynamic_rebalance_keeps_correctness(self):
        config = ScaleRpcConfig(
            group_size=4,
            time_slice_ns=20_000,
            block_size=256,
            blocks_per_client=8,
            n_server_threads=2,
            dynamic_scheduling=True,
            rebalance_every_slices=2,  # aggressive
        )
        cluster = make_cluster(12, config=config)
        out = []
        drivers = [closed_loop(cluster, c, batch=2, n_batches=12, out=out) for c in cluster.clients]
        run_until_done(cluster, drivers, 400_000_000)
        assert len(out) == 12 * 2 * 12
        assert all(resp.payload == req.payload for req, resp in out)
        assert cluster.server.scheduler.rebalances > 0


class TestExactlyOnceVisibility:
    def test_no_response_for_unknown_requests(self, small_config):
        """Responses only complete their own handles; duplicates are
        absorbed by the dedup window."""
        cluster = make_cluster(6, config=small_config)
        out = []
        drivers = [closed_loop(cluster, c, batch=4, n_batches=10, out=out) for c in cluster.clients]
        run_until_done(cluster, drivers, 400_000_000)
        req_ids = [req.req_id for req, _resp in out]
        assert len(req_ids) == len(set(req_ids)), "every request completes once"
