"""Tests for the NTP-like global synchronizer."""

import pytest

from repro.core import GlobalSynchronizer, ScaleRpcConfig, ScaleRpcServer
from repro.rdma import Fabric, Node
from repro.sim import Simulator


def make_servers(n=3, time_slice_ns=50_000, slices_equal=True):
    sim = Simulator()
    fabric = Fabric(sim)
    servers = []
    for index in range(n):
        node = Node(sim, f"s{index}", fabric)
        slice_ns = time_slice_ns if slices_equal else time_slice_ns * (index + 1)
        servers.append(
            ScaleRpcServer(
                node,
                lambda r: r.payload,
                config=ScaleRpcConfig(
                    group_size=4,
                    time_slice_ns=slice_ns,
                    dynamic_scheduling=False,
                ),
            )
        )
    return sim, servers


class TestConstruction:
    def test_requires_two_servers(self):
        sim, servers = make_servers(1)
        with pytest.raises(ValueError):
            GlobalSynchronizer(servers)

    def test_requires_equal_slices(self):
        sim, servers = make_servers(2, slices_equal=False)
        with pytest.raises(ValueError):
            GlobalSynchronizer(servers)

    def test_attaches_to_all_servers(self):
        sim, servers = make_servers(3)
        synchronizer = GlobalSynchronizer(servers)
        assert all(s.synchronizer is synchronizer for s in servers)


class TestProtocol:
    def test_sync_rounds_happen(self):
        sim, servers = make_servers(3)
        synchronizer = GlobalSynchronizer(servers, sync_period_ns=1_000_000)
        synchronizer.start()
        sim.run(until=5_000_000)
        assert synchronizer.sync_rounds >= 2 * (len(servers) - 1)

    def test_half_rtt_measured(self):
        sim, servers = make_servers(2)
        synchronizer = GlobalSynchronizer(servers, sync_period_ns=1_000_000)
        synchronizer.start()
        sim.run(until=3_000_000)
        # One wire flight each way plus NIC processing: the measured
        # correction is around the fabric's one-way latency.
        latency = servers[0].node.fabric.params.latency_ns
        assert latency // 2 < synchronizer.max_correction_ns < 4 * latency

    def test_followers_land_on_the_grid(self):
        sim, servers = make_servers(3)
        synchronizer = GlobalSynchronizer(servers, sync_period_ns=500_000)
        synchronizer.start()
        sim.run(until=2_000_000)
        period = synchronizer.period_ns
        anchor = synchronizer._anchor
        assert anchor is not None
        for follower in synchronizer.followers:
            target = synchronizer._next_switch.get(id(follower))
            assert target is not None
            # The NTP-style estimate carries a small asymmetric-path error;
            # it must land within a few microseconds of the grid.
            offset = (target - anchor) % period
            assert min(offset, period - offset) <= 5_000

    def test_sleep_slice_aligns_servers(self):
        sim, servers = make_servers(2)
        synchronizer = GlobalSynchronizer(servers, sync_period_ns=200_000)
        synchronizer.start()
        sim.run(until=1_000_000)
        wakeups = []

        def sleeper(sim, server):
            yield from synchronizer.sleep_slice(server, synchronizer.period_ns)
            wakeups.append(sim.now)

        for server in servers:
            sim.process(sleeper(sim, server))
        sim.run(until=2_000_000)
        assert len(wakeups) == 2
        assert abs(wakeups[0] - wakeups[1]) <= synchronizer.period_ns // 10
