"""The deterministic wire format (repro.core.message encode/decode).

The real-byte backends (repro.net) depend on three properties tested
here: round-trips are lossless, encoding is deterministic byte-for-byte,
and corrupt or oversized frames raise WireFormatError instead of being
silently misparsed.
"""

import json
import struct
import zlib

import pytest

from repro.core.message import (
    MAX_WIRE_BYTES,
    TRACE_EXT_BYTES,
    TRACE_TS_BYTES,
    WIRE_VERSION,
    PoolBinding,
    RpcRequest,
    RpcResponse,
    TraceContext,
    WireFormatError,
    decode_message,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

_HEADER = struct.Struct("!BBHIQII")
_CRC = struct.Struct("!I")
_OVERHEAD = _HEADER.size + _CRC.size


def _request(**overrides) -> RpcRequest:
    defaults = dict(client_id=7, rpc_type="echo", payload={"k": [1, 2]},
                    data_bytes=64, req_id=1234, created_ns=5_000)
    defaults.update(overrides)
    return RpcRequest(**defaults)


class TestRequestRoundTrip:
    def test_all_fields_survive(self):
        request = _request()
        decoded = decode_request(encode_request(request))
        assert decoded == request

    def test_empty_payload(self):
        decoded = decode_request(encode_request(_request(payload=None)))
        assert decoded.payload is None

    def test_empty_string_payload(self):
        decoded = decode_request(encode_request(_request(payload="")))
        assert decoded.payload == ""

    def test_tuple_payload_normalizes_to_list(self):
        decoded = decode_request(encode_request(_request(payload=(1, "a"))))
        assert decoded.payload == [1, "a"]

    def test_encoding_is_deterministic(self):
        # Same message, two dict insertion orders -> identical bytes.
        a = _request(payload={"x": 1, "y": 2})
        b = _request(payload={"y": 2, "x": 1})
        assert encode_request(a) == encode_request(b)

    def test_max_size_payload(self):
        # The largest payload that still encodes: fill the frame right up
        # to MAX_WIRE_BYTES.  JSON string quoting adds 2 bytes; the tail
        # is {"created_ns":5000,"payload":"...","rpc_type":"echo"}.
        probe = encode_request(_request(payload=""))
        headroom = MAX_WIRE_BYTES - len(probe)
        payload = "x" * headroom
        frame = encode_request(_request(payload=payload))
        assert len(frame) == MAX_WIRE_BYTES
        assert decode_request(frame).payload == payload

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(WireFormatError, match="limit"):
            encode_request(_request(payload="x" * MAX_WIRE_BYTES))

    def test_non_json_payload_rejected_on_encode(self):
        with pytest.raises(WireFormatError, match="wire-encodable"):
            encode_request(_request(payload=object()))


class TestResponseRoundTrip:
    def test_plain_response(self):
        response = RpcResponse(req_id=9, client_id=3, payload=[1, None, "z"],
                               data_bytes=48)
        assert decode_response(encode_response(response)) == response

    def test_flags_survive(self):
        response = RpcResponse(req_id=9, client_id=3, payload="boom",
                               failed=True, context_switch=True)
        decoded = decode_response(encode_response(response))
        assert decoded.failed and decoded.context_switch

    def test_binding_survives(self):
        binding = PoolBinding(pool_base=4096, slot_base=8192,
                              slot_bytes=1024, epoch=3, seq=7)
        response = RpcResponse(req_id=9, client_id=3, binding=binding)
        assert decode_response(encode_response(response)).binding == binding

    def test_no_binding_decodes_to_none(self):
        response = RpcResponse(req_id=9, client_id=3)
        assert decode_response(encode_response(response)).binding is None


class TestCorruptFrames:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_request(encode_request(_request())[: _HEADER.size - 1])

    def test_flipped_tail_byte_fails_crc(self):
        frame = bytearray(encode_request(_request()))
        frame[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match="CRC"):
            decode_request(bytes(frame))

    def test_truncated_tail_rejected(self):
        frame = encode_request(_request())
        with pytest.raises(WireFormatError, match="tail length"):
            decode_request(frame[:-1])

    def test_unknown_version_rejected(self):
        frame = bytearray(encode_request(_request()))
        frame[1] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            decode_request(bytes(frame))

    def test_unknown_kind_rejected(self):
        tail = b"{}"
        frame = (_HEADER.pack(99, WIRE_VERSION, 0, 1, 1, 0, len(tail))
                 + _CRC.pack(zlib.crc32(tail)) + tail)
        with pytest.raises(WireFormatError, match="kind"):
            decode_message(frame)

    def test_request_frame_is_not_a_response(self):
        with pytest.raises(WireFormatError, match="expected a response"):
            decode_response(encode_request(_request()))

    def test_oversized_frame_rejected_before_parse(self):
        with pytest.raises(WireFormatError, match="limit"):
            decode_request(b"\x01" * (MAX_WIRE_BYTES + 1))

    def test_empty_frame(self):
        with pytest.raises(WireFormatError, match="empty"):
            decode_message(b"")

    def test_malformed_tail_shape(self):
        # Valid CRC, valid JSON, wrong schema (missing rpc_type).
        tail = json.dumps({"payload": 1}).encode()
        frame = (_HEADER.pack(1, WIRE_VERSION, 0, 1, 1, 0, len(tail))
                 + _CRC.pack(zlib.crc32(tail)) + tail)
        with pytest.raises(WireFormatError, match="malformed request"):
            decode_request(frame)


_FLAG_TRACE = 1 << 2  # mirrors the private constant; the bit IS the format


def _flags(frame: bytes) -> int:
    return _HEADER.unpack_from(frame)[2]


class TestTraceExtension:
    def test_request_round_trip(self):
        trace = TraceContext(trace_id=0xABCDEF, span_id=0x123456)
        request = _request(trace=trace)
        decoded = decode_request(encode_request(request))
        assert decoded.trace == trace
        assert not decoded.trace.has_ts

    def test_response_round_trip_with_server_stamps(self):
        trace = TraceContext(trace_id=7, span_id=9, ts_a=1_000, ts_b=2_000)
        response = RpcResponse(req_id=9, client_id=3, trace=trace)
        decoded = decode_response(encode_response(response))
        assert decoded.trace == trace
        assert decoded.trace.has_ts

    def test_flag_bit_set_only_when_traced(self):
        assert not _flags(encode_request(_request())) & _FLAG_TRACE
        traced = _request(trace=TraceContext(trace_id=1, span_id=2))
        assert _flags(encode_request(traced)) & _FLAG_TRACE

    def test_untraced_bytes_unchanged_by_extension(self):
        # The zero-cost-when-off contract at the byte level: an untraced
        # request encodes identically whether or not the trace field
        # exists, and carries no "trace" key in the tail.
        frame = encode_request(_request())
        tail = frame[_OVERHEAD:]
        assert b"trace" not in tail
        assert decode_request(frame).trace is None

    def test_wire_bytes_charged_only_when_present(self):
        base = _request().wire_bytes
        traced = _request(trace=TraceContext(trace_id=1, span_id=2))
        stamped = _request(trace=TraceContext(1, 2, ts_a=3, ts_b=4))
        assert traced.wire_bytes == base + TRACE_EXT_BYTES
        assert stamped.wire_bytes == base + TRACE_EXT_BYTES + TRACE_TS_BYTES

    def test_corrupt_extension_rejected(self):
        for raw in ("xx", [1], [1, 2, 3], [1, "a"], {"trace_id": 1}):
            with pytest.raises(WireFormatError, match="trace extension"):
                TraceContext.from_wire(raw)

    def test_flag_without_extension_rejected(self):
        frame = bytearray(encode_request(_request()))
        flags = _flags(bytes(frame)) | _FLAG_TRACE
        struct.pack_into("!H", frame, 2, flags)
        with pytest.raises(WireFormatError, match="trace"):
            decode_request(bytes(frame))

    def test_deterministic_ids_on_wire(self):
        from repro.obs.dist import rpc_trace_id, span_id

        trace_id = rpc_trace_id(7, 1234)
        request = _request(trace=TraceContext(
            trace_id=trace_id, span_id=span_id(trace_id, "client")))
        decoded = decode_request(encode_request(request))
        assert decoded.trace.trace_id == rpc_trace_id(7, 1234)


class TestDecodeMessageDispatch:
    def test_dispatches_on_kind_byte(self):
        request = _request()
        response = RpcResponse(req_id=9, client_id=3)
        assert decode_message(encode_request(request)) == request
        assert decode_message(encode_response(response)) == response
