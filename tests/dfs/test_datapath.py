"""Tests for the DFS data path (shared memory pool, one-sided file I/O)."""

import pytest

from repro.baselines import BaselineConfig
from repro.dfs import (
    DataPath,
    DataServer,
    ExtentAllocator,
    DfsClient,
    FsError,
    MetadataService,
    SelfRpcServer,
)
from repro.rdma import Fabric, Node
from repro.sim import Simulator


def make_dfs_with_data(n_data_servers=2, extent_bytes=64 * 1024):
    sim = Simulator()
    fabric = Fabric(sim)
    mds_node = Node(sim, "mds", fabric)
    data_servers = [
        DataServer(Node(sim, f"ds{i}", fabric), pool_bytes=16 << 20,
                   extent_bytes=extent_bytes)
        for i in range(n_data_servers)
    ]
    mds = MetadataService(mds_node, allocator=ExtentAllocator(data_servers))
    server = SelfRpcServer(
        mds_node,
        mds.handler,
        config=BaselineConfig(block_size=4096, blocks_per_client=8),
        handler_cost_fn=mds.handler_cost_fn,
        response_bytes=mds.response_bytes_fn,
    )
    machine = Node(sim, "m0", fabric)
    client = DfsClient(
        server.connect(machine),
        data_path=DataPath(machine, data_servers),
    )
    server.start()
    return sim, mds, data_servers, client


class TestAllocator:
    def test_round_robin_placement(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        allocator = mds.allocator
        extents = allocator.allocate(3 * 64 * 1024)
        assert [e.server_index for e in extents] == [0, 1, 0]

    def test_partial_last_extent(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        extents = mds.allocator.allocate(100_000)  # 1.5 extents
        assert len(extents) == 2
        assert extents[0].length == 64 * 1024
        assert extents[1].length == 100_000 - 64 * 1024

    def test_pool_exhaustion(self):
        sim = Simulator()
        node = Node(sim, "ds", Fabric(sim))
        server = DataServer(node, pool_bytes=1 << 20, extent_bytes=1 << 20)
        server.allocate_extent()
        with pytest.raises(MemoryError):
            server.allocate_extent()

    def test_no_allocator_configured(self):
        sim = Simulator()
        fabric = Fabric(sim)
        mds = MetadataService(Node(sim, "mds", fabric))
        from repro.core.message import RpcRequest

        result = mds.handler(RpcRequest(1, "fs.alloc", payload=("/f", 100)))
        assert isinstance(result, FsError)


class TestFileIo:
    def test_write_then_read_roundtrip(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mknod("/big.dat")
            yield from client.write_file("/big.dat", 200_000, data="payload-A")
            size, chunks = yield from client.read_file("/big.dat")
            out["size"] = size
            out["chunks"] = chunks

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["size"] == 200_000
        # 200 KB over 64 KB extents = 4 chunks, all carrying our data tag.
        assert len(out["chunks"]) == 4
        assert all(chunk[0] == "payload-A" for chunk in out["chunks"])

    def test_appends_extend_layout(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mknod("/log")
            yield from client.write_file("/log", 64 * 1024, data="first")
            yield from client.write_file("/log", 64 * 1024, data="second")
            size, chunks = yield from client.read_file("/log")
            out["size"] = size
            out["tags"] = [chunk[0] for chunk in chunks]

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["size"] == 2 * 64 * 1024
        assert out["tags"] == ["first", "second"]

    def test_stat_reflects_data_size(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mknod("/f")
            yield from client.write_file("/f", 12345)
            st = yield from client.stat("/f")
            out["size"] = st.size

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["size"] == 12345

    def test_read_unwritten_file_is_empty(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mknod("/empty")
            size, chunks = yield from client.read_file("/empty")
            out["size"] = size
            out["chunks"] = chunks

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["size"] == 0
        assert out["chunks"] == []

    def test_data_servers_cpu_not_involved(self):
        """One-sided I/O: the data servers' CPUs stay idle."""
        sim, mds, data_servers, client = make_dfs_with_data()

        def driver(sim):
            yield from client.mknod("/f")
            yield from client.write_file("/f", 256 * 1024)
            yield from client.read_file("/f")

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        for ds in data_servers:
            assert ds.node.cpu.total_busy_ns == 0

    def test_write_without_datapath_raises(self):
        sim = Simulator()
        fabric = Fabric(sim)
        mds_node = Node(sim, "mds", fabric)
        mds = MetadataService(mds_node)
        server = SelfRpcServer(mds_node, mds.handler, config=BaselineConfig())
        client = DfsClient(server.connect(Node(sim, "m", fabric)))
        with pytest.raises(RuntimeError):
            next(client.write_file("/f", 10))

    def test_alloc_on_directory_fails(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mkdir("/d")
            try:
                yield from client.write_file("/d", 100)
            except FsError as exc:
                out["error"] = type(exc).__name__

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["error"] == "FsError"

    def test_bulk_write_throughput_is_wire_bound(self):
        """A multi-megabyte write moves at link speed, not RPC speed."""
        sim, mds, data_servers, client = make_dfs_with_data(extent_bytes=1 << 20)
        out = {}

        def driver(sim):
            yield from client.mknod("/bulk")
            start = sim.now
            yield from client.write_file("/bulk", 8 << 20)
            out["elapsed"] = sim.now - start

        sim.process(driver(sim))
        sim.run(until=500_000_000)
        gb_per_s = (8 << 20) / out["elapsed"]
        # Two data servers: parallel extents can exceed a single link, but
        # the client machine's NIC serializes at ~7 GB/s.
        assert 3.0 < gb_per_s <= 7.5


class TestExtentReclamation:
    def test_rmnod_frees_extents(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        before = sum(ds.free_extents for ds in data_servers)
        out = {}

        def driver(sim):
            yield from client.mknod("/tmpfile")
            yield from client.write_file("/tmpfile", 3 * 64 * 1024)
            out["during"] = sum(ds.free_extents for ds in data_servers)
            yield from client.rmnod("/tmpfile")
            out["after"] = sum(ds.free_extents for ds in data_servers)

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["during"] == before - 3
        assert out["after"] == before

    def test_freed_extents_are_reused(self):
        sim, mds, data_servers, client = make_dfs_with_data()
        out = {}

        def driver(sim):
            yield from client.mknod("/a")
            first = yield from client.write_file("/a", 64 * 1024)
            yield from client.rmnod("/a")
            yield from client.mknod("/b")
            second = yield from client.write_file("/b", 64 * 1024)
            out["first"] = first[0].addr
            out["second"] = second[0].addr

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        assert out["first"] == out["second"]

    def test_free_rejects_bogus_address(self):
        sim = Simulator()
        node = Node(sim, "ds", Fabric(sim))
        server = DataServer(node, pool_bytes=4 << 20, extent_bytes=1 << 20)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            server.free_extent(server.region.range.base + 7)
