"""Integration tests: the DFS over each RPC layer."""

import pytest

from repro.baselines import BaselineConfig
from repro.core import ScaleRpcConfig, ScaleRpcServer
from repro.dfs import (
    DfsClient,
    ExistsError,
    MetadataService,
    NotFoundError,
    SelfRpcServer,
)
from repro.rdma import Fabric, Node
from repro.sim import Simulator


def make_dfs(rpc="selfrpc", n_clients=2):
    sim = Simulator()
    fabric = Fabric(sim)
    node = Node(sim, "mds", fabric)
    mds = MetadataService(node)
    if rpc == "scalerpc":
        server = ScaleRpcServer(
            node,
            mds.handler,
            config=ScaleRpcConfig(group_size=4, time_slice_ns=50_000),
            handler_cost_fn=mds.handler_cost_fn,
            response_bytes=mds.response_bytes_fn,
        )
    else:
        server = SelfRpcServer(
            node,
            mds.handler,
            config=BaselineConfig(block_size=4096, blocks_per_client=8),
            handler_cost_fn=mds.handler_cost_fn,
            response_bytes=mds.response_bytes_fn,
        )
    machines = [Node(sim, f"m{i}", fabric) for i in range(2)]
    clients = [
        DfsClient(server.connect(machines[i % 2])) for i in range(n_clients)
    ]
    server.start()
    return sim, mds, server, clients


@pytest.mark.parametrize("rpc", ["selfrpc", "scalerpc"])
class TestDfsOverRpc:
    def test_full_file_lifecycle(self, rpc):
        sim, mds, server, clients = make_dfs(rpc)
        result = {}

        def driver(sim):
            client = clients[0]
            yield from client.mkdir("/home")
            yield from client.mknod("/home/a.txt")
            st_ = yield from client.stat("/home/a.txt")
            listing = yield from client.readdir("/home")
            yield from client.rmnod("/home/a.txt")
            after = yield from client.readdir("/home")
            result.update(stat=st_, listing=listing, after=after)

        sim.process(driver(sim))
        sim.run(until=5_000_000)
        assert result["stat"].itype == "file"
        assert result["listing"] == ["a.txt"]
        assert result["after"] == []

    def test_errors_propagate_as_exceptions(self, rpc):
        sim, mds, server, clients = make_dfs(rpc)
        caught = []

        def driver(sim):
            client = clients[0]
            try:
                yield from client.stat("/missing")
            except NotFoundError:
                caught.append("notfound")
            yield from client.mknod("/dup")
            try:
                yield from client.mknod("/dup")
            except ExistsError:
                caught.append("exists")

        sim.process(driver(sim))
        sim.run(until=5_000_000)
        assert caught == ["notfound", "exists"]

    def test_concurrent_clients_build_disjoint_trees(self, rpc):
        sim, mds, server, clients = make_dfs(rpc, n_clients=2)
        done = []

        def driver(sim, index, client):
            yield from client.mkdir(f"/c{index}")
            for j in range(5):
                yield from client.mknod(f"/c{index}/f{j}")
            names = yield from client.readdir(f"/c{index}")
            done.append((index, names))

        for index, client in enumerate(clients):
            sim.process(driver(sim, index, client))
        sim.run(until=20_000_000)
        assert sorted(done) == [
            (0, [f"f{j}" for j in range(5)]),
            (1, [f"f{j}" for j in range(5)]),
        ]

    def test_batched_ops(self, rpc):
        sim, mds, server, clients = make_dfs(rpc)
        results = {}

        def driver(sim):
            client = clients[0]
            yield from client.mkdir("/b")
            handles = yield from client.post_batch(
                "fs.mknod", [f"/b/f{j}" for j in range(8)]
            )
            yield from client.wait_batch(handles)
            listing = yield from client.readdir("/b")
            results["listing"] = listing

        sim.process(driver(sim))
        sim.run(until=10_000_000)
        assert results["listing"] == [f"f{j}" for j in range(8)]


class TestSelfIdentifiedMechanism:
    def test_requests_arrive_via_write_imm(self):
        sim, mds, server, clients = make_dfs("selfrpc")

        def driver(sim):
            yield from clients[0].mknod("/x")

        sim.process(driver(sim))
        sim.run(until=2_000_000)
        # The shared receive CQ saw the self-identified completion.
        assert server._shared_rcq.pushed >= 1

    def test_recvs_are_reposted(self):
        sim, mds, server, clients = make_dfs("selfrpc")

        def driver(sim):
            for j in range(100):
                yield from clients[0].mknod(f"/x{j}")

        sim.process(driver(sim))
        sim.run(until=50_000_000)
        qp = server._qps_by_imm[clients[0].rpc.client_id]
        # 100 consumed, 100 reposted: the queue is back to full depth.
        assert len(qp.recv_queue) == 64
        assert mds.namespace.n_inodes == 101

    def test_variable_sized_readdir_response(self):
        sim, mds, server, clients = make_dfs("selfrpc")
        sizes = {}
        mds.namespace.mkdir("/big")
        for j in range(200):
            mds.namespace.mknod(f"/big/f{j}")

        def driver(sim):
            response = yield from clients[0].rpc.sync_call(
                "fs.readdir", payload="/big", data_bytes=40
            )
            sizes["bytes"] = response.data_bytes
            sizes["entries"] = len(response.payload)

        sim.process(driver(sim))
        sim.run(until=5_000_000)
        assert sizes["entries"] == 200
        # 200 entries exceed the 4 KB UD MTU: the paper's reason the DFS
        # comparison excludes UD-based RPCs.
        assert sizes["bytes"] > 4096


class TestMdsCosts:
    def test_updates_cost_more_than_lookups(self):
        sim, mds, server, clients = make_dfs("selfrpc")
        from repro.core.message import RpcRequest

        mknod = RpcRequest(1, "fs.mknod", payload="/p")
        stat = RpcRequest(1, "fs.stat", payload="/p")
        assert mds.handler_cost_fn(mknod) > 5 * mds.handler_cost_fn(stat)

    def test_readdir_cost_scales_with_entries(self):
        sim, mds, server, clients = make_dfs("selfrpc")
        from repro.core.message import RpcRequest

        mds.namespace.mkdir("/d")
        request = RpcRequest(1, "fs.readdir", payload="/d")
        empty_cost = mds.handler_cost_fn(request)
        for j in range(100):
            mds.namespace.mknod(f"/d/f{j}")
        assert mds.handler_cost_fn(request) > empty_cost
