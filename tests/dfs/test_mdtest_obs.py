"""mdtest's repro.obs lifecycle spans (the same telemetry ScaleTX emits)."""

import pytest

from repro.dfs.mdtest import MdtestConfig, run_mdtest


@pytest.fixture(scope="module")
def small():
    return dict(n_clients=4, n_client_machines=2, files_per_client=4,
                seeded_per_client=40, measure_ns=150_000, settle_ns=50_000)


@pytest.fixture(scope="module")
def observed(small):
    return run_mdtest(MdtestConfig(obs_enabled=True, **small))


class TestMdtestObs:
    def test_off_by_default(self, small):
        assert run_mdtest(MdtestConfig(**small)).obs is None

    def test_every_client_gets_a_dfs_track(self, observed, small):
        tracks = {s["track"] for s in observed.obs["spans"]
                  if s["track"].startswith("dfs.")}
        assert tracks == {f"dfs.c{i + 1}" for i in range(small["n_clients"])}

    def test_spans_cover_each_measured_op(self, observed):
        names = {s["name"] for s in observed.obs["spans"]
                 if s["track"].startswith("dfs.")}
        # One post + one wait phase per batched metadata op, like the
        # lock/validate/log/commit phases a transaction emits.
        for op in ("fs.mknod", "fs.stat", "fs.readdir", "fs.rmnod"):
            assert {f"{op}.post", f"{op}.wait"} <= names

    def test_batch_args_recorded(self, observed):
        spans = [s for s in observed.obs["spans"]
                 if s["track"].startswith("dfs.")]
        assert all(s["args"]["batch"] >= 1 for s in spans)

    def test_rpc_timelines_recorded_underneath(self, observed):
        assert len(observed.obs["rpcs"]) > 0

    def test_obs_does_not_change_results(self, observed, small):
        plain = run_mdtest(MdtestConfig(**small))
        assert plain.as_dict() == observed.as_dict()
