"""Unit and property tests for the FS namespace."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs import (
    DirectoryNotEmptyError,
    ExistsError,
    FsError,
    FsNamespace,
    InodeType,
    NotADirectoryError_,
    NotFoundError,
)


@pytest.fixture
def fs():
    return FsNamespace()


class TestMknodStat:
    def test_mknod_then_stat(self, fs):
        created = fs.mknod("/a", now_ns=5)
        st_ = fs.stat("/a")
        assert st_.ino == created.ino
        assert st_.itype == InodeType.FILE
        assert st_.ctime_ns == 5

    def test_mknod_duplicate_rejected(self, fs):
        fs.mknod("/a")
        with pytest.raises(ExistsError):
            fs.mknod("/a")

    def test_mknod_in_missing_dir(self, fs):
        with pytest.raises(NotFoundError):
            fs.mknod("/missing/a")

    def test_mknod_under_file_rejected(self, fs):
        fs.mknod("/a")
        with pytest.raises(NotADirectoryError_):
            fs.mknod("/a/b")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FsError):
            fs.mknod("a")

    def test_stat_missing(self, fs):
        with pytest.raises(NotFoundError):
            fs.stat("/nope")

    def test_inode_numbers_unique(self, fs):
        a = fs.mknod("/a")
        b = fs.mknod("/b")
        assert a.ino != b.ino


class TestDirectories:
    def test_mkdir_and_nested_files(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        fs.mknod("/d/e/f")
        assert fs.stat("/d/e/f").itype == InodeType.FILE
        assert fs.stat("/d").itype == InodeType.DIRECTORY

    def test_readdir_sorted(self, fs):
        fs.mkdir("/d")
        for name in ("z", "a", "m"):
            fs.mknod(f"/d/{name}")
        assert fs.readdir("/d") == ["a", "m", "z"]

    def test_readdir_on_file_rejected(self, fs):
        fs.mknod("/f")
        with pytest.raises(NotADirectoryError_):
            fs.readdir("/f")

    def test_readdir_root(self, fs):
        fs.mknod("/x")
        assert fs.readdir("/") == ["x"]

    def test_nlink_counts_entries(self, fs):
        fs.mkdir("/d")
        fs.mknod("/d/a")
        assert fs.stat("/d").nlink == 3  # ., .., a


class TestRmnod:
    def test_rmnod_file(self, fs):
        fs.mknod("/a")
        fs.rmnod("/a")
        assert not fs.exists("/a")

    def test_rmnod_missing(self, fs):
        with pytest.raises(NotFoundError):
            fs.rmnod("/a")

    def test_rmnod_empty_dir(self, fs):
        fs.mkdir("/d")
        fs.rmnod("/d")
        assert not fs.exists("/d")

    def test_rmnod_nonempty_dir_rejected(self, fs):
        fs.mkdir("/d")
        fs.mknod("/d/a")
        with pytest.raises(DirectoryNotEmptyError):
            fs.rmnod("/d")

    def test_inode_count_tracks(self, fs):
        base = fs.n_inodes
        fs.mkdir("/d")
        fs.mknod("/d/a")
        fs.rmnod("/d/a")
        assert fs.n_inodes == base + 1


class TestNamespaceProperties:
    names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)

    @given(ops=st.lists(st.tuples(st.sampled_from(["mknod", "rmnod"]), names), max_size=60))
    @settings(max_examples=50)
    def test_matches_reference_set(self, ops):
        """The namespace under flat mknod/rmnod behaves as a set of names."""
        fs = FsNamespace()
        reference = set()
        for op, name in ops:
            path = f"/{name}"
            if op == "mknod":
                if name in reference:
                    with pytest.raises(ExistsError):
                        fs.mknod(path)
                else:
                    fs.mknod(path)
                    reference.add(name)
            else:
                if name in reference:
                    fs.rmnod(path)
                    reference.discard(name)
                else:
                    with pytest.raises(NotFoundError):
                        fs.rmnod(path)
        assert fs.readdir("/") == sorted(reference)
        assert fs.n_inodes == 1 + len(reference)

    @given(names=st.lists(names, unique=True, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_walk_visits_every_path(self, names):
        fs = FsNamespace()
        fs.mkdir("/d")
        for name in names:
            fs.mknod(f"/d/{name}")
        walked = set(fs.walk())
        assert walked == {"/d"} | {f"/d/{n}" for n in names}
