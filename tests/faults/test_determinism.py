"""Fault determinism: same seed => byte-identical fault schedule and
results; an empty plan => byte-identical to no plan at all.

The witness serializes the executed schedule (every firing's simulated
time, kind, action, victim) plus the run's measured outputs.  The
schedule comes entirely from dedicated ``faults.*`` RNG substreams, so
it must survive re-running in the same interpreter (global counters such
as req_id / qp_num keep advancing and must never leak in).
"""

import json

import pytest

from repro.bench.harness import RpcExperiment, run_rpc_experiment
from repro.faults import FaultPlan, FaultSpec

US = 1_000

_STORM = FaultPlan.of([
    FaultSpec("client_crash", mtbf_ns=150 * US, duration_ns=80 * US, count=2),
    FaultSpec("link_degrade", at_ns=200 * US, duration_ns=60 * US,
              latency_mult=4.0, rc_loss_rate=0.2),
    FaultSpec("conn_cache_flush", at_ns=320 * US),
    FaultSpec("straggler", mtbf_ns=220 * US, duration_ns=30 * US, count=1),
])


def _run(system, seed, plan):
    experiment = RpcExperiment(
        system=system,
        n_clients=6,
        n_client_machines=2,
        group_size=6,
        n_server_threads=2,
        warmup_ns=100 * US,
        measure_ns=400 * US,
        time_slice_ns=50 * US,
        seed=seed,
        fault_plan=plan,
        rpc_timeout_ns=60 * US if plan is not None else 0,
        lease_ns=120 * US if plan is not None else 0,
    )
    result = run_rpc_experiment(experiment)
    payload = {
        "system": system,
        "seed": seed,
        "completed": result.completed_ops,
        "window_ns": result.window_ns,
        "median_ns": result.latency.median_ns,
        "p99_ns": result.latency.p99_ns,
        "faults": result.faults,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("system", ["scalerpc", "rawwrite"])
def test_same_seed_same_schedule_and_results(system):
    first = _run(system, seed=23, plan=_STORM)
    second = _run(system, seed=23, plan=_STORM)
    assert first == second
    decoded = json.loads(first)
    # The plan actually fired: crashes + degrade + flush all executed.
    kinds = {record["kind"] for record in decoded["faults"]["schedule"]}
    assert {"client_crash", "link_degrade", "conn_cache_flush"} <= kinds
    assert decoded["faults"]["injected"] >= 4
    assert decoded["completed"] > 0


def test_different_seed_shifts_the_schedule():
    """Rate-driven firings must draw from the seeded substream."""
    first = json.loads(_run("scalerpc", seed=23, plan=_STORM))
    second = json.loads(_run("scalerpc", seed=24, plan=_STORM))
    crash_times = lambda decoded: [
        record["t"] for record in decoded["faults"]["schedule"]
        if record["kind"] == "client_crash"
    ]
    assert crash_times(first) != crash_times(second)


@pytest.mark.parametrize("system", ["scalerpc", "rawwrite"])
def test_empty_plan_is_byte_identical_to_no_plan(system):
    """FaultPlan.none() must not spawn the injector, draw RNG, or perturb
    the run in any way — the zero-cost-when-off bar."""
    without = _run(system, seed=5, plan=None)
    with_empty = _run(system, seed=5, plan=FaultPlan.none())
    # The empty-plan run reports faults=None exactly like the no-plan run.
    assert json.loads(with_empty)["faults"] is None
    assert without == with_empty


def test_idle_recovery_knobs_do_not_fire():
    """Timeout watchdog + lease reaper enabled but never triggered: the
    run completes with zero timeouts, reconnects, and evictions."""
    experiment = RpcExperiment(
        system="scalerpc",
        n_clients=6,
        n_client_machines=2,
        group_size=6,
        n_server_threads=2,
        warmup_ns=100 * US,
        measure_ns=300 * US,
        time_slice_ns=50 * US,
        seed=5,
        rpc_timeout_ns=500 * US,
        lease_ns=500 * US,
    )
    result = run_rpc_experiment(experiment)
    assert result.completed_ops > 0
    assert result.server_stats.lease_evictions == 0
    assert result.server_stats.readmissions == 0
