"""Watchdog escalation to a *different* endpoint.

The rpc-timeout watchdog's recovery loop normally reconnects to the
client's own server.  When ``failover_fn`` names another live server,
recovery must escalate — hand the in-flight requests to that endpoint
instead of burning the remaining reconnect attempts against the dead
one.  This is the plain-transport half of the replica failover path:
no replication group, just two ordinary ScaleRPC servers and a hook.
"""

from repro.transport import Topology

US = 1_000


def _echo(request):
    return {"echo": request.payload["n"]}


def _world(rpc_timeout_ns=120 * US):
    topo = Topology.build(
        server_names=("s0", "s1"), n_client_machines=1, seed=3
    )
    servers = {}
    for node in topo.server_nodes:
        servers[node.name] = topo.build_server(
            "scalerpc", _echo, node=node,
            group_size=8, time_slice_ns=50 * US,
            rpc_timeout_ns=rpc_timeout_ns,
        )
    return topo, servers


def _workload(topo, client, ops, completions, gap_ns=2 * US):
    sim = topo.sim
    for n in range(ops):
        handle = yield from client.async_call("echo", payload={"n": n})
        yield from client.flush()
        yield from client.poll_completions([handle])
        completions.append((sim.now, n))
        yield sim.timeout(gap_ns)


def _kill(sim, server, at_ns):
    yield sim.timeout(at_ns)
    server.fail_stop()


def test_watchdog_escalates_to_the_failover_target():
    topo, servers = _world()
    s0, s1 = servers["s0"], servers["s1"]
    s0.start()
    s1.start()
    client = s0.connect(topo.next_machine())
    client.failover_fn = lambda c: s1 if s1.alive else None
    completions = []
    topo.sim.process(_workload(topo, client, 20, completions), name="drv")
    topo.sim.process(_kill(topo.sim, s0, 30 * US), name="kill")
    topo.sim.run(until=3_000 * US)
    # Every op completed despite the home server dying mid-run...
    assert [n for _, n in completions] == list(range(20))
    # ...through the watchdog (a real timeout fired)...
    assert client.timeouts >= 1
    # ...which escalated to the *other* endpoint rather than retrying
    # the dead one to exhaustion.
    assert client.failovers >= 1
    assert client.server is s1
    assert s1.alive


def test_without_failover_fn_recovery_exhausts_against_the_dead_server():
    topo, servers = _world()
    s0, s1 = servers["s0"], servers["s1"]
    s0.start()
    s1.start()
    client = s0.connect(topo.next_machine())
    assert client.failover_fn is None
    completions = []
    topo.sim.process(_workload(topo, client, 20, completions), name="drv")
    topo.sim.process(_kill(topo.sim, s0, 30 * US), name="kill")
    topo.sim.run(until=3_000 * US)
    # No alternative endpoint: the run stalls at the fault point.
    assert len(completions) < 20
    assert client.failovers == 0
    assert client.server is s0


def test_failover_fn_returning_home_server_does_not_loop():
    """A hook that names the client's own (dead) server is not an
    escalation target — recovery treats it as 'no alternative'."""
    topo, servers = _world()
    s0, s1 = servers["s0"], servers["s1"]
    s0.start()
    s1.start()
    client = s0.connect(topo.next_machine())
    client.failover_fn = lambda c: c.server
    completions = []
    topo.sim.process(_workload(topo, client, 20, completions), name="drv")
    topo.sim.process(_kill(topo.sim, s0, 30 * US), name="kill")
    topo.sim.run(until=3_000 * US)
    assert client.failovers == 0
    assert len(completions) < 20
