"""FaultPlan / FaultSpec: plain frozen data, validated at construction."""

import dataclasses

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", at_ns=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("client_crash")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("client_crash", at_ns=1, mtbf_ns=1)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("client_crash", at_ns=-1)
        with pytest.raises(ValueError):
            FaultSpec("client_crash", mtbf_ns=0)
        with pytest.raises(ValueError):
            FaultSpec("client_crash", at_ns=1, duration_ns=-1)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec("client_crash", mtbf_ns=10, count=0)

    def test_degradation_shape_validated(self):
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", at_ns=1, bandwidth_mult=0.0)
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", at_ns=1, rc_loss_rate=1.0)

    def test_specs_are_frozen(self):
        spec = FaultSpec("client_crash", at_ns=5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.at_ns = 6

    def test_every_kind_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind, at_ns=1).kind == kind


class TestFaultPlan:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []

    def test_single_crash_shape(self):
        plan = FaultPlan.single_crash(at_ns=100, down_ns=50, target=3)
        (spec,) = plan
        assert spec.kind == "client_crash"
        assert spec.at_ns == 100
        assert spec.duration_ns == 50
        assert spec.target == 3
        assert not plan.empty

    def test_crash_storm_shape(self):
        plan = FaultPlan.crash_storm(mtbf_ns=1_000, down_ns=200, count=4)
        (spec,) = plan
        assert spec.mtbf_ns == 1_000
        assert spec.at_ns is None
        assert spec.count == 4
        assert spec.target is None  # victim drawn per firing

    def test_of_accepts_any_sequence(self):
        specs = [
            FaultSpec("conn_cache_flush", at_ns=10),
            FaultSpec("straggler", mtbf_ns=500, duration_ns=100),
        ]
        plan = FaultPlan.of(specs)
        assert len(plan) == 2
        assert plan.specs == tuple(specs)

    def test_non_spec_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(("not a spec",))
