"""FaultPlan / FaultSpec: plain frozen data, validated at construction."""

import dataclasses

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", at_ns=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("client_crash")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("client_crash", at_ns=1, mtbf_ns=1)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("client_crash", at_ns=-1)
        with pytest.raises(ValueError):
            FaultSpec("client_crash", mtbf_ns=0)
        with pytest.raises(ValueError):
            FaultSpec("client_crash", at_ns=1, duration_ns=-1)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec("client_crash", mtbf_ns=10, count=0)

    def test_degradation_shape_validated(self):
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", at_ns=1, bandwidth_mult=0.0)
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", at_ns=1, rc_loss_rate=1.0)

    def test_specs_are_frozen(self):
        spec = FaultSpec("client_crash", at_ns=5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.at_ns = 6

    def test_every_kind_constructible(self):
        required = {
            "server_fail_stop": {"node": "r0"},
            "partition": {"src": "r0", "dst": "r1"},
            "rack_failure": {"group_targets": ("r0", "r1")},
        }
        for kind in FAULT_KINDS:
            extra = required.get(kind, {})
            assert FaultSpec(kind, at_ns=1, **extra).kind == kind


class TestFaultPlan:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []

    def test_single_crash_shape(self):
        plan = FaultPlan.single_crash(at_ns=100, down_ns=50, target=3)
        (spec,) = plan
        assert spec.kind == "client_crash"
        assert spec.at_ns == 100
        assert spec.duration_ns == 50
        assert spec.target == 3
        assert not plan.empty

    def test_crash_storm_shape(self):
        plan = FaultPlan.crash_storm(mtbf_ns=1_000, down_ns=200, count=4)
        (spec,) = plan
        assert spec.mtbf_ns == 1_000
        assert spec.at_ns is None
        assert spec.count == 4
        assert spec.target is None  # victim drawn per firing

    def test_of_accepts_any_sequence(self):
        specs = [
            FaultSpec("conn_cache_flush", at_ns=10),
            FaultSpec("straggler", mtbf_ns=500, duration_ns=100),
        ]
        plan = FaultPlan.of(specs)
        assert len(plan) == 2
        assert plan.specs == tuple(specs)

    def test_non_spec_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(("not a spec",))


class TestReplicaPlaneSpecs:
    def test_fail_stop_constructor_shape(self):
        plan = FaultPlan.fail_stop(at_ns=100, node="r0")
        (spec,) = plan
        assert spec.kind == "server_fail_stop"
        assert spec.node == "r0"
        assert spec.restart_at is None
        assert spec.duration_ns == 0  # fail-stop: no restart, ever

    def test_server_fail_stop_requires_a_node(self):
        with pytest.raises(ValueError, match="requires node"):
            FaultSpec("server_fail_stop", at_ns=1)

    def test_server_fail_stop_never_restarts(self):
        with pytest.raises(ValueError, match="never restarts"):
            FaultSpec("server_fail_stop", at_ns=1, node="r0", duration_ns=5)

    def test_partition_requires_both_ends(self):
        with pytest.raises(ValueError, match="src and dst"):
            FaultSpec("partition", at_ns=1, src="r0")
        with pytest.raises(ValueError, match="must differ"):
            FaultSpec("partition", at_ns=1, src="r0", dst="r0")

    def test_partition_is_directional_data(self):
        spec = FaultSpec("partition", at_ns=1, src="r0", dst="r1")
        assert (spec.src, spec.dst) == ("r0", "r1")

    def test_rack_failure_requires_targets(self):
        with pytest.raises(ValueError, match="group_targets"):
            FaultSpec("rack_failure", at_ns=1)
        spec = FaultSpec("rack_failure", at_ns=1, group_targets=["r0", "r1"])
        assert spec.group_targets == ("r0", "r1")  # normalized to a tuple


class TestRestartAt:
    def test_restart_at_only_for_client_crash(self):
        with pytest.raises(ValueError, match="only applies"):
            FaultSpec("straggler", at_ns=1, restart_at=5)

    def test_restart_at_needs_a_scheduled_crash(self):
        with pytest.raises(ValueError, match="scheduled"):
            FaultSpec("client_crash", mtbf_ns=10, restart_at=5)

    def test_restart_at_must_follow_the_crash(self):
        with pytest.raises(ValueError, match="after at_ns"):
            FaultSpec("client_crash", at_ns=10, restart_at=10)

    def test_restart_at_excludes_duration(self):
        with pytest.raises(ValueError, match="exclusive"):
            FaultSpec("client_crash", at_ns=1, restart_at=5, duration_ns=3)

    def test_bare_scheduled_crash_is_fail_stop(self):
        spec = FaultSpec("client_crash", at_ns=1, target=0)
        assert not spec.restarts_target
        assert spec.fail_stopped() == (("client", 0),)

    def test_restarting_forms_do_not_fail_stop(self):
        timed = FaultSpec("client_crash", at_ns=1, duration_ns=5, target=0)
        absolute = FaultSpec("client_crash", at_ns=1, restart_at=9, target=0)
        assert timed.restarts_target and absolute.restarts_target
        assert timed.fail_stopped() == ()
        assert absolute.fail_stopped() == ()


class TestFailStopPlanValidation:
    def test_plan_rejects_restart_of_fail_stopped_client(self):
        dead = FaultSpec("client_crash", at_ns=10, target=2)  # fail-stop
        back = FaultSpec("client_crash", at_ns=50, duration_ns=5, target=2)
        with pytest.raises(ValueError, match="never restart"):
            FaultPlan.of([dead, back])

    def test_plan_allows_restarts_of_other_clients(self):
        dead = FaultSpec("client_crash", at_ns=10, target=2)
        other = FaultSpec("client_crash", at_ns=50, duration_ns=5, target=3)
        assert len(FaultPlan.of([dead, other])) == 2

    def test_server_and_client_identities_do_not_collide(self):
        # Killing server "r0" must not poison client restarts.
        dead_server = FaultPlan.fail_stop(at_ns=10, node="r0").specs[0]
        restart = FaultSpec("client_crash", at_ns=50, duration_ns=5, target=0)
        assert len(FaultPlan.of([dead_server, restart])) == 2

    def test_rack_failure_identities_are_all_fail_stopped(self):
        spec = FaultSpec("rack_failure", at_ns=1, group_targets=("r0", "r1"))
        assert spec.fail_stopped() == (("node", "r0"), ("node", "r1"))
