"""The recovery path end-to-end: a client crashes mid-measurement and
every system restores its liveness within a bounded window.

ScaleRPC additionally must *reclaim* the dead client's resources — the
lease reaper evicts it from its group (slice + msgpool slot freed,
remaining members renumbered densely) and readmits it on reconnect.
"""

import pytest

from repro.analysis.mc.scenarios import build_world
from repro.bench.harness import RpcExperiment, run_rpc_experiment
from repro.faults import FaultPlan

US = 1_000
MS = 1_000_000


def _crash_run(system):
    experiment = RpcExperiment(
        system=system,
        n_clients=8,
        n_client_machines=2,
        group_size=8,
        n_server_threads=2,
        warmup_ns=100 * US,
        measure_ns=600 * US,
        time_slice_ns=50 * US,
        seed=3,
        fault_plan=FaultPlan.single_crash(
            at_ns=200 * US, down_ns=150 * US, target=0
        ),
        rpc_timeout_ns=50 * US,
        lease_ns=100 * US,
    )
    return run_rpc_experiment(experiment)


@pytest.mark.parametrize("system", ["scalerpc", "rawwrite", "herd", "fasst"])
def test_single_crash_recovers_bounded(system):
    result = _crash_run(system)
    faults = result.faults
    assert faults["injected"] == 1
    assert faults["recovered"] == 1
    (recovery_ns,) = faults["recovery_ns"]
    assert 0 < recovery_ns < 2 * MS
    assert faults["client_reconnects"] >= 1
    # The run kept making progress through the fault.
    assert result.completed_ops > 0


def test_scalerpc_reclaims_and_readmits():
    result = _crash_run("scalerpc")
    health = result.faults["scalerpc"]
    # The lease reaper evicted the dead client (slice + slot reclaimed)...
    assert health["lease_evictions"] >= 1
    # ...and readmitted it after reconnect: full membership at the end,
    # with every group's slots densely renumbered.
    assert health["readmissions"] >= 1
    assert health["clients_registered"] == 8
    assert health["slots_consistent"]


class TestLeaseSemantics:
    """Unit-level lease behavior on a small direct world (no harness)."""

    def test_dead_client_is_evicted(self):
        world = build_world(
            n_clients=2, group_size=4, warmup=False,
            requests_per_client=1, crash_ns=5 * US, recover_ns=0,
            lease_ns=30 * US, time_slice_ns=30 * US,
        )
        world.sim.run(until=200 * US)
        crashed = world.clients[0]
        assert crashed.client_id not in world.server.groups.clients
        assert world.server.stats.lease_evictions == 1
        # The dead client's group slice shrank to the survivor alone.
        members = [
            ctx.client_id
            for group in world.server.groups.groups
            for ctx in group.members
        ]
        assert members == [world.clients[1].client_id]

    def test_idle_but_alive_client_survives_the_lease(self):
        """Expiry is a liveness probe: an idle client whose connection is
        healthy gets renewed, never evicted."""
        world = build_world(
            n_clients=2, group_size=4, warmup=False,
            requests_per_client=1, lease_ns=20 * US, time_slice_ns=30 * US,
        )
        # Run far past many lease periods with the clients long idle.
        world.sim.run(until=400 * US)
        assert world.server.stats.lease_evictions == 0
        assert len(world.server.groups.clients) == 2

    def test_restarted_client_is_readmitted(self):
        world = build_world(
            n_clients=2, group_size=4, warmup=False,
            requests_per_client=1, crash_ns=5 * US, recover_ns=60 * US,
            lease_ns=30 * US, time_slice_ns=30 * US,
        )
        world.sim.run(until=600 * US)
        assert world.server.stats.lease_evictions == 1
        assert world.server.stats.readmissions == 1
        assert len(world.server.groups.clients) == 2
        # Liveness: every accepted request completed despite the crash
        # (the explorer's crash-recover-2c scenario perturbs the timing
        # so the crash also lands mid-request; see tests/analysis).
        assert world.handles
        assert all(handle.completed_ns is not None for handle in world.handles)
