"""RC reliability semantics: retransmit on loss, RNR backoff, QP -> ERROR
on exhaustion (the hardware's IBV_WC_RETRY_EXC_ERR / RNR_RETRY_EXC_ERR).

The drop-pattern tests script ``fabric.drops_packet`` directly so each
path is hit by construction rather than by seed luck; the statistical
test exercises the real ``fabric.rc_loss`` RNG substream.
"""

import pytest

from repro.rdma import (
    Fabric,
    Node,
    QpState,
    Transport,
    WireParams,
    post_recv,
    post_send,
    post_write,
)
from repro.sim import Simulator


def _rc_world(params=None, seed=1):
    sim = Simulator()
    fabric = Fabric(sim, params or WireParams(), seed=seed)
    a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
    qp_a, qp_b = a.create_qp(Transport.RC), b.create_qp(Transport.RC)
    qp_a.connect(qp_b)
    return sim, fabric, a, b, qp_a, qp_b


def _script_drops(fabric, pattern):
    """Make the next drop decisions follow ``pattern`` (then deliver)."""
    decisions = iter(pattern)
    fabric.drops_packet = lambda reliable: next(decisions, False)


class TestRcRetransmit:
    def test_drop_is_retransmitted_and_delivered(self):
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        _script_drops(fabric, [True, True, False])  # drop, drop, deliver
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32, payload="x")
        sim.run()
        assert wr.completion.value.status == "success"
        assert b.load(dst.range.base) == "x"
        assert qp_a.retransmits == 2
        assert qp_a.state is QpState.RTS

    def test_retransmit_pays_the_ack_timeout(self):
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        _script_drops(fabric, [True, False])
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32)
        sim.run()
        assert wr.completion.value.timestamp_ns >= qp_a.timeout_ns

    def test_exhaustion_errors_the_qp(self):
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        qp_a.retry_cnt = 2
        _script_drops(fabric, [True] * 10)  # never delivers
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32, payload="x")
        sim.run()
        assert wr.completion.value.status == "retry-exceeded"
        assert qp_a.state is QpState.ERROR
        assert qp_a.retry_exhausted == 1
        assert qp_a.retransmits == 2
        assert b.load(dst.range.base) is None  # payload never landed

    def test_lossy_fabric_still_delivers_everything(self):
        """Statistical path: the real ``fabric.rc_loss`` stream decides."""
        sim, fabric, a, b, qp_a, qp_b = _rc_world(
            WireParams(rc_loss_rate=0.3), seed=7
        )
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 16)
        arrived = []
        b.watch_writes(dst.range, arrived.append)
        for i in range(50):
            post_write(qp_a, src.range.base, dst.range.base + 64 * i, 32,
                       payload=i, signaled=False)
        sim.run()
        assert len(arrived) == 50           # RC never loses, only retries
        assert qp_a.retransmits > 0         # and the loss rate actually bit
        assert qp_a.state is QpState.RTS

    def test_zero_loss_rate_draws_nothing(self):
        """Healthy fast path: no RNG draw, no retransmit bookkeeping."""
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        post_write(qp_a, src.range.base, dst.range.base, 32)
        sim.run()
        assert qp_a.retransmits == 0


class TestRnrRetry:
    def test_rnr_retry_waits_for_late_recv(self):
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        qp_a.rnr_retry = 3
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_send(qp_a, 32, payload="late", local_addr=src.range.base)

        def repost():
            # Recv shows up one RNR backoff after the send arrives.
            yield sim.timeout(qp_a.rnr_timeout_ns + 5_000)
            post_recv(qp_b, dst.range.base, 256)

        sim.process(repost(), name="late-recv")
        sim.run()
        assert wr.completion.value.status == "success"
        assert qp_a.rnr_retries >= 1
        assert qp_a.state is QpState.RTS

    def test_rnr_exhaustion_errors_the_qp(self):
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        qp_a.rnr_retry = 2
        src = a.register_memory(4096)
        wr = post_send(qp_a, 32, local_addr=src.range.base)  # no recv ever
        sim.run()
        assert wr.completion.value.status == "rnr-retry-exceeded"
        assert qp_a.state is QpState.ERROR
        assert qp_a.rnr_retries == 2
        assert qp_a.retry_exhausted == 1

    def test_default_rnr_zero_keeps_silent_drop(self):
        """The historical semantics: rnr_retry == 0 drops at the responder
        (counted), completes the send, and never errors the QP."""
        sim, fabric, a, b, qp_a, qp_b = _rc_world()
        assert qp_a.rnr_retry == 0
        src = a.register_memory(4096)
        wr = post_send(qp_a, 32, local_addr=src.range.base)
        sim.run()
        assert wr.completion.value.status == "success"
        assert qp_b.rnr_drops == 1
        assert qp_a.state is QpState.RTS
