"""Unit and property tests for the exact LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import LruCache


class TestLruCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_miss_then_hit(self):
        cache = LruCache(4)
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_is_lru_order(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a; b is now LRU
        cache.access("c")  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_cyclic_access_beyond_capacity_always_misses(self):
        # Round-robin over N > capacity keys thrashes LRU completely:
        # the mechanism behind the NIC-cache collapse.
        cache = LruCache(4)
        keys = list(range(6))
        for _ in range(10):
            for k in keys:
                cache.access(k)
        # First pass: 6 cold misses; every later access also misses.
        assert cache.hits == 0
        assert cache.misses == 60

    def test_cyclic_access_within_capacity_all_hit(self):
        cache = LruCache(8)
        keys = list(range(6))
        for _ in range(10):
            for k in keys:
                cache.access(k)
        assert cache.misses == 6  # cold only
        assert cache.hits == 54

    def test_probe_does_not_touch(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        assert cache.probe("a")
        # a not refreshed by probe, so it is still LRU and gets evicted.
        cache.access("c")
        assert not cache.probe("a")
        assert cache.hits == 0

    def test_insert_does_not_count_access(self):
        cache = LruCache(2)
        cache.insert("a")
        assert cache.accesses == 0
        assert "a" in cache

    def test_insert_refreshes_existing(self):
        cache = LruCache(2)
        cache.insert("a")
        cache.insert("b")
        cache.insert("a")  # refresh
        cache.insert("c")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalidate(self):
        cache = LruCache(2)
        cache.access("a")
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert "a" not in cache

    def test_miss_rate(self):
        cache = LruCache(2)
        assert cache.miss_rate == 0.0
        cache.access("a")
        cache.access("a")
        assert cache.miss_rate == pytest.approx(0.5)

    def test_clear_preserves_counters(self):
        cache = LruCache(2)
        cache.access("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_reset_stats(self):
        cache = LruCache(2)
        cache.access("a")
        cache.reset_stats()
        assert cache.accesses == 0
        assert "a" in cache

    def test_keys_in_lru_order(self):
        cache = LruCache(3)
        for k in ("a", "b", "c"):
            cache.access(k)
        cache.access("a")
        assert list(cache.keys()) == ["b", "c", "a"]

    def test_pop_lru_empty(self):
        assert LruCache(1).pop_lru() is None


class TestLruProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        accesses=st.lists(st.integers(min_value=0, max_value=31), max_size=200),
    )
    @settings(max_examples=100)
    def test_occupancy_never_exceeds_capacity(self, capacity, accesses):
        cache = LruCache(capacity)
        for key in accesses:
            cache.access(key)
        assert len(cache) <= capacity

    @given(
        capacity=st.integers(min_value=1, max_value=16),
        accesses=st.lists(st.integers(min_value=0, max_value=31), max_size=200),
    )
    @settings(max_examples=100)
    def test_counters_are_consistent(self, capacity, accesses):
        cache = LruCache(capacity)
        for key in accesses:
            cache.access(key)
        assert cache.hits + cache.misses == len(accesses)
        # Entries present = insertions - evictions.
        assert len(cache) == cache.misses - cache.evictions

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=31), max_size=200),
    )
    @settings(max_examples=60)
    def test_matches_reference_lru(self, accesses):
        """Cross-check against a naive list-based LRU implementation."""
        capacity = 4
        cache = LruCache(capacity)
        reference: list[int] = []  # index 0 = LRU
        for key in accesses:
            expected_hit = key in reference
            if expected_hit:
                reference.remove(key)
            elif len(reference) == capacity:
                reference.pop(0)
            reference.append(key)
            assert cache.access(key) is expected_hit
        assert list(cache.keys()) == reference
