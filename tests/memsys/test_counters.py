"""Tests for PCIe counters and the PCM-like monitor."""

import pytest

from repro.memsys import (
    CounterMonitor,
    LastLevelCache,
    LlcParams,
    PcieCounters,
)
from repro.sim import Simulator


class TestPcieCounters:
    def test_snapshot_and_delta(self):
        counters = PcieCounters()
        before = counters.snapshot()
        counters.pcie_rd_cur += 5
        counters.itom += 2
        counters.rfo += 1
        delta = counters.snapshot().delta(before)
        assert delta.pcie_rd_cur == 5
        assert delta.total_writes == 3

    def test_reset(self):
        counters = PcieCounters()
        counters.pcie_itom = 9
        counters.reset()
        assert counters.snapshot().pcie_itom == 0


class TestCounterMonitor:
    def _setup(self):
        sim = Simulator()
        counters = PcieCounters()
        llc = LastLevelCache(LlcParams(capacity_bytes=64 * 64), counters)
        return sim, counters, llc

    def test_rates_per_second(self):
        sim, counters, llc = self._setup()
        monitor = CounterMonitor(sim, counters, llc)
        monitor.start()
        counters.pcie_rd_cur += 1000
        sim.run(until=1_000_000)  # 1 ms
        rates = monitor.stop()
        assert rates.window_ns == 1_000_000
        assert rates.pcie_rd_cur_per_s == pytest.approx(1e6)

    def test_window_isolation(self):
        sim, counters, llc = self._setup()
        counters.pcie_rd_cur += 999  # before window: must not count
        monitor = CounterMonitor(sim, counters, llc)
        monitor.start()
        sim.run(until=1000)
        rates = monitor.stop()
        assert rates.pcie_rd_cur_per_s == 0.0

    def test_l3_miss_rate_in_window(self):
        sim, counters, llc = self._setup()
        llc.cpu_access(0, 64)  # pre-window miss, excluded
        monitor = CounterMonitor(sim, counters, llc)
        monitor.start()
        llc.cpu_access(0, 64)  # hit
        llc.cpu_access(64, 64)  # miss
        sim.run(until=10)
        assert monitor.stop().l3_miss_rate == pytest.approx(0.5)

    def test_stop_before_start_raises(self):
        sim, counters, llc = self._setup()
        with pytest.raises(RuntimeError):
            CounterMonitor(sim, counters, llc).stop()

    def test_empty_window_raises(self):
        sim, counters, llc = self._setup()
        monitor = CounterMonitor(sim, counters, llc)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.stop()

    def test_scaled_dict(self):
        sim, counters, llc = self._setup()
        monitor = CounterMonitor(sim, counters, llc)
        monitor.start()
        counters.itom += 2_000_000
        sim.run(until=1_000_000_000)  # 1 s
        scaled = monitor.stop().scaled()
        assert scaled["ItoM"] == pytest.approx(2.0)
        assert set(scaled) == {"PCIeRdCur", "RFO", "ItoM", "PCIeItoM"}
