"""Tests for the set-associative LLC + DDIO model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import LastLevelCache, LlcParams

KIB = 1024


def small_llc(sets=4, ways=4, ddio_ways=1):
    """A tiny LLC: `sets` sets x `ways` ways of 64-byte lines."""
    return LastLevelCache(
        LlcParams(
            capacity_bytes=sets * ways * 64,
            ways=ways,
            ddio_ways=ddio_ways,
        )
    )


def addr_for(llc, set_index, tag):
    """An address mapping to ``set_index`` with a distinguishing tag."""
    n_sets = llc.params.n_sets
    return (tag * n_sets + set_index) * 64


class TestLlcParams:
    def test_defaults(self):
        params = LlcParams()
        assert params.total_lines == 12 * 1024 * KIB // 64
        assert params.n_sets == params.total_lines // 16

    def test_validation(self):
        with pytest.raises(ValueError):
            LlcParams(capacity_bytes=64)
        with pytest.raises(ValueError):
            LlcParams(ways=1)
        with pytest.raises(ValueError):
            LlcParams(ddio_ways=16, ways=16)
        with pytest.raises(ValueError):
            LlcParams(capacity_bytes=12 * 1024 * KIB + 64)


class TestDmaWrite:
    def test_first_write_allocates(self):
        llc = small_llc()
        result = llc.dma_write(0x1000, 32)
        assert result.allocations == 1
        assert result.update_hits == 0
        assert llc.counters.pcie_itom == 1

    def test_second_write_same_line_is_update(self):
        llc = small_llc()
        llc.dma_write(0x1000, 32)
        result = llc.dma_write(0x1000, 32)
        assert result.allocations == 0
        assert result.update_hits == 1
        assert llc.counters.pcie_itom == 1  # unchanged

    def test_partial_vs_full_line_counters(self):
        llc = small_llc()
        llc.dma_write(0x1000, 32)  # partial line -> RFO
        assert llc.counters.rfo == 1
        assert llc.counters.itom == 0
        llc.dma_write(0x2000, 64)  # aligned full line -> ItoM
        assert llc.counters.itom == 1

    def test_multi_line_write_spans_lines(self):
        llc = small_llc()
        result = llc.dma_write(0x1000, 256)
        assert result.lines == 4
        assert result.full_lines == 4

    def test_unaligned_write_has_partial_edges(self):
        llc = small_llc()
        result = llc.dma_write(0x1020, 128)  # starts mid-line
        assert result.lines == 3
        assert result.partial_lines == 2
        assert result.full_lines == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            small_llc().dma_write(0, 0)

    def test_ddio_ways_bound_allocations_per_set(self):
        # 1 DDIO way per set: DMA-writing 3 tags of the same set without
        # CPU promotion keeps evicting within that single way.
        llc = small_llc(sets=4, ways=4, ddio_ways=1)
        for _round in range(3):
            for tag in range(3):
                llc.dma_write(addr_for(llc, 0, tag), 64)
        assert llc.stats.dma_update_hits == 0
        assert llc.stats.dma_allocations == 9

    def test_other_sets_unaffected_by_one_sets_thrash(self):
        llc = small_llc(sets=4, ways=4, ddio_ways=1)
        llc.dma_write(addr_for(llc, 1, 0), 64)  # set 1, stays resident
        for tag in range(6):  # thrash set 0
            llc.dma_write(addr_for(llc, 0, tag), 64)
        assert llc.resident(addr_for(llc, 1, 0), 64)


class TestCpuAccessAndPromotion:
    def test_cpu_miss_then_hit(self):
        llc = small_llc()
        miss = llc.cpu_access(0x5000, 32)
        assert miss.misses == 1
        hit = llc.cpu_access(0x5000, 32)
        assert hit.hits == 1
        assert hit.cost_ns == llc.params.cpu_hit_ns

    def test_cpu_promotes_ddio_lines(self):
        # After the CPU touches a DMA-written line it stops being a
        # write-allocate victim: later DMA traffic through the same set
        # evicts within the DDIO way, not the promoted line.
        llc = small_llc(sets=4, ways=4, ddio_ways=1)
        hot = addr_for(llc, 0, 0)
        llc.dma_write(hot, 64)
        assert llc.cpu_access(hot, 64).hits == 1  # promoted
        for tag in range(1, 5):  # cycle the DDIO way of set 0
            llc.dma_write(addr_for(llc, 0, tag), 64)
        assert llc.dma_write(hot, 64).update_hits == 1

    def test_footprint_within_set_capacity_reaches_steady_state(self):
        llc = small_llc(sets=8, ways=4, ddio_ways=1)
        addrs = [addr_for(llc, s, t) for s in range(8) for t in range(2)]
        for _round in range(4):
            for addr in addrs:
                llc.dma_write(addr, 64)
                llc.cpu_access(addr, 64)
        # Cold allocations only; afterwards promotion keeps everything hot.
        assert llc.stats.dma_allocations == len(addrs)
        assert llc.stats.cpu_misses == 0  # DMA always wrote first

    def test_set_overflow_thrashes_even_when_total_capacity_fits(self):
        # 8 sets x 4 ways = 32 lines total, but all 6 lines hammer set 0:
        # 6 > 4 ways, so the working set never becomes resident.
        llc = small_llc(sets=8, ways=4, ddio_ways=1)
        addrs = [addr_for(llc, 0, t) for t in range(6)]
        for _round in range(5):
            for addr in addrs:
                llc.cpu_access(addr, 64)
        assert llc.stats.cpu_hits == 0
        assert llc.occupied_lines <= 32

    def test_l3_miss_rate(self):
        llc = small_llc()
        llc.cpu_access(0, 64)
        llc.cpu_access(0, 64)
        llc.cpu_access(64, 64)
        assert llc.stats.l3_miss_rate == pytest.approx(2 / 3)

    def test_resident(self):
        llc = small_llc()
        assert not llc.resident(0x100, 32)
        llc.cpu_access(0x100, 32)
        assert llc.resident(0x100, 32)

    def test_flush(self):
        llc = small_llc()
        llc.cpu_access(0, 64)
        llc.flush()
        assert not llc.resident(0, 64)
        assert llc.stats.cpu_misses == 1  # stats preserved


class TestDmaRead:
    def test_counts_pcie_rd_cur_per_line(self):
        llc = small_llc()
        assert llc.dma_read(0, 32) == 1
        assert llc.dma_read(0x1000, 256) == 4
        assert llc.counters.pcie_rd_cur == 5


class TestStridedFootprints:
    """The mechanism behind Figure 3(b): stride concentrates hot lines
    onto fewer sets, so larger blocks thrash at the same line count."""

    def _steady_state_alloc_rate(self, stride_lines, n_blocks, rounds=6):
        llc = small_llc(sets=16, ways=4, ddio_ways=1)
        addrs = [b * stride_lines * 64 for b in range(n_blocks)]
        for addr in addrs:  # cold round
            llc.dma_write(addr, 64)
            llc.cpu_access(addr, 64)
        llc.reset_stats()
        for _round in range(rounds):
            for addr in addrs:
                llc.dma_write(addr, 64)
                llc.cpu_access(addr, 64)
        return llc.stats.dma_allocate_rate

    def test_small_stride_fits_large_stride_thrashes(self):
        # 24 hot lines either spread over all 16 sets (stride 1) or
        # concentrated on 4 sets (stride 4; 24 > 4 sets x 4 ways).
        assert self._steady_state_alloc_rate(stride_lines=1, n_blocks=24) == 0.0
        assert self._steady_state_alloc_rate(stride_lines=4, n_blocks=24) > 0.5


class TestLlcProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["dma", "cpu"]),
                st.integers(min_value=0, max_value=255),  # line index
                st.integers(min_value=1, max_value=192),  # size
            ),
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_sets_never_exceed_ways(self, ops):
        llc = small_llc(sets=8, ways=4, ddio_ways=1)
        for kind, line, size in ops:
            addr = line * 64
            if kind == "dma":
                llc.dma_write(addr, size)
            else:
                llc.cpu_access(addr, size)
        assert all(len(s) <= llc.params.ways for s in llc._sets)

    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
            max_size=200,
        )
    )
    @settings(max_examples=60)
    def test_second_touch_always_hits(self, ops):
        """Immediately re-accessing an address must hit (temporal locality)."""
        llc = small_llc(sets=16, ways=4, ddio_ways=1)
        for line, use_dma in ops:
            addr = line * 64
            if use_dma:
                llc.dma_write(addr, 64)
                result = llc.dma_write(addr, 64)
                assert result.update_hits == 1
            else:
                llc.cpu_access(addr, 64)
                assert llc.cpu_access(addr, 64).hits == 1
