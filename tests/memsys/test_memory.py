"""Tests for the physical memory model."""

import pytest

from repro.memsys import HUGE_PAGE_SIZE, OutOfMemoryError, PhysicalMemory


class TestPhysicalMemory:
    def test_never_returns_page_zero(self):
        mem = PhysicalMemory()
        r = mem.allocate(64)
        assert r.base >= HUGE_PAGE_SIZE

    def test_alignment(self):
        mem = PhysicalMemory()
        r = mem.allocate(100, alignment=4096)
        assert r.base % 4096 == 0

    def test_bad_alignment_rejected(self):
        mem = PhysicalMemory()
        with pytest.raises(ValueError):
            mem.allocate(64, alignment=3)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory().allocate(0)

    def test_ranges_do_not_overlap(self):
        mem = PhysicalMemory()
        a = mem.allocate(1000)
        b = mem.allocate(1000)
        assert a.end <= b.base

    def test_out_of_memory(self):
        mem = PhysicalMemory(capacity_bytes=4 * HUGE_PAGE_SIZE)
        with pytest.raises(OutOfMemoryError):
            mem.allocate(100 * HUGE_PAGE_SIZE)

    def test_huge_page_allocation_rounds_up(self):
        mem = PhysicalMemory()
        r = mem.allocate_huge_pages(HUGE_PAGE_SIZE + 1)
        assert r.size == 2 * HUGE_PAGE_SIZE
        assert r.base % HUGE_PAGE_SIZE == 0

    def test_owner_range(self):
        mem = PhysicalMemory()
        r = mem.allocate(128)
        assert mem.owner_range(r.base + 64) == r
        with pytest.raises(ValueError):
            mem.owner_range(0)

    def test_range_contains_and_offset(self):
        mem = PhysicalMemory()
        r = mem.allocate(128)
        assert r.contains(r.base, 128)
        assert not r.contains(r.base, 129)
        assert r.offset_of(r.base + 10) == 10
        with pytest.raises(ValueError):
            r.offset_of(r.end)

    def test_allocated_bytes_tracks(self):
        mem = PhysicalMemory()
        mem.allocate(64)
        assert mem.allocated_bytes >= 64
