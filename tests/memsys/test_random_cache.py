"""Tests for the random-replacement cache policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import LruCache


class TestRandomPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LruCache(4, policy="fifo")

    def test_deterministic_given_seed(self):
        def run(seed):
            cache = LruCache(8, policy="random", seed=seed)
            return [cache.access(i % 20) for i in range(200)]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_cyclic_access_beyond_capacity_hits_sometimes(self):
        """The property that motivates random replacement: cyclic access
        over N > capacity keys yields ~capacity/N hits, not 0% (which is
        what strict LRU gives and what the paper's gradual Figure-1(b)
        curve rules out)."""
        capacity, n_keys, rounds = 32, 64, 200
        cache = LruCache(capacity, policy="random", seed=3)
        for _r in range(rounds):
            for key in range(n_keys):
                cache.access(key)
        hit_rate = cache.hits / cache.accesses
        # Fixed point of h = (1 - (1-h)/C)^N for C=32, N=64 is ~0.2.
        assert 0.1 < hit_rate < 0.4

        lru = LruCache(capacity, policy="lru")
        for _r in range(rounds):
            for key in range(n_keys):
                lru.access(key)
        assert lru.hits == 0  # strict LRU thrashes completely

    def test_invalidate_keeps_index_consistent(self):
        cache = LruCache(4, policy="random", seed=1)
        for key in range(4):
            cache.insert(key)
        assert cache.invalidate(2)
        assert not cache.invalidate(2)
        cache.insert(9)
        assert set(cache._keys) == set(cache._entries)

    def test_clear_resets_index(self):
        cache = LruCache(4, policy="random", seed=1)
        for key in range(4):
            cache.access(key)
        cache.clear()
        assert len(cache) == 0
        cache.access(1)
        assert len(cache) == 1

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["access", "insert", "invalidate"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_index_matches_entries(self, ops):
        cache = LruCache(5, policy="random", seed=7)
        for op, key in ops:
            if op == "access":
                cache.access(key)
            elif op == "insert":
                cache.insert(key)
            else:
                cache.invalidate(key)
            assert len(cache) <= 5
            assert set(cache._keys) == set(cache._entries)
            assert len(cache._keys) == len(cache._entries)
