"""Clock skew/offset estimation and clock-aligned shard merging.

The proc backend's distributed traces only make sense if the NTP-style
four-timestamp exchange recovers the offset between two processes' clock
domains.  These tests inject known skew (and drift) through the Clock
test knobs and through synthetic shards, and assert the merge puts the
server span back inside the client span.
"""

import pytest

from repro.net.clock import Clock, OffsetEstimator, estimate_offset
from repro.obs import Observer
from repro.obs.dist import (
    format_trace_id,
    merge_shards,
    rpc_trace_id,
    span_id,
)


class TestClock:
    def test_monotonic_and_zero_based(self):
        clock = Clock()
        a = clock.now()
        b = clock.now()
        assert 0 <= a <= b

    def test_skew_shifts_readings(self):
        skewed = Clock(skew_ns=5_000_000_000)
        assert skewed.now() >= 5_000_000_000

    def test_negative_skew(self):
        skewed = Clock(skew_ns=-(10**12))
        assert skewed.now() < 0

    def test_drift_stretches_elapsed_time(self):
        # 1000 ppm of a given elapsed time is deterministic integer math:
        # replay the formula rather than racing the real clock.
        clock = Clock(drift_ppm=1000)
        elapsed = 2_000_000
        assert elapsed + elapsed * 1000 // 1_000_000 == 2_002_000
        assert clock.drift_ppm == 1000


class TestEstimateOffset:
    def test_recovers_constant_skew(self):
        # Server clock = client clock + 7000, symmetric 100 ns hops.
        offset, rtt = estimate_offset(1000, 8100, 8150, 1250)
        assert offset == 7000
        assert rtt == 200

    def test_rtt_excludes_server_hold_time(self):
        offset, rtt = estimate_offset(0, 7100, 9100, 2200)
        assert rtt == 200  # 2200 elapsed minus 2000 held

    def test_asymmetry_error_bounded_by_half_rtt(self):
        # 300 ns out, 100 ns back: true offset 7000, estimate off by 100,
        # within rtt/2 = 200.
        offset, rtt = estimate_offset(1000, 8300, 8350, 1450)
        assert abs(offset - 7000) <= rtt // 2


class TestOffsetEstimator:
    def test_min_rtt_sample_wins(self):
        est = OffsetEstimator()
        est.add_sample(0, 8000, 8050, 2050)  # rtt 2000, offset 7000
        est.add_sample(0, 7100, 7150, 250)  # rtt 200, offset 7000
        est.add_sample(0, 9000, 9050, 4050)  # rtt 4000
        assert est.rtt_ns == 200
        assert est.offset_ns == 7000
        assert est.n_samples == 3

    def test_negative_rtt_sample_ignored(self):
        est = OffsetEstimator()
        est.add_sample(0, 100, 5000, 400)  # server held longer than rtt
        assert est.offset_ns is None

    def test_empty_as_dict(self):
        assert OffsetEstimator().as_dict() == {
            "offset_ns": None, "rtt_ns": None, "n_samples": 0,
        }

    def test_sample_cap(self):
        est = OffsetEstimator(max_samples=1)
        est.add_sample(0, 8000, 8050, 2050)
        est.add_sample(0, 7100, 7150, 250)  # past the cap: ignored
        assert est.rtt_ns == 2000
        assert est.n_samples == 1


def _shards(skew_ns, drift_ppm=0, rtt_ns=200):
    """Synthetic server+client shard pair for one traced RPC.

    True timeline (server domain): post 10_000, dispatch 10_100,
    done 10_400, complete 10_500.  The client's readings are displaced by
    ``-skew_ns`` (its clock runs behind the server's by ``skew_ns``) and
    stretched by ``drift_ppm``.
    """
    trace = rpc_trace_id(0, 1)
    hex_id = format_trace_id(trace)

    def client_reads(true_ns):
        t = true_ns - skew_ns
        return t + t * drift_ppm // 1_000_000

    server = Observer(meta={"role": "server", "transport": "scalerpc"})
    server.rpc_stage(1, "req_rx", 10_050)
    server.rpc_stage(1, "dispatch", 10_100)
    server.rpc_stage(1, "done", 10_400)
    server.rpc_trace(1, trace)

    client = Observer(meta={"role": "client", "client_id": 0})
    post, complete = client_reads(10_000), client_reads(10_500)
    client.rpc_stage(1, "post", post)
    client.rpc_stage(1, "complete", complete)
    client.rpc_trace(1, trace)

    est = OffsetEstimator()
    est.add_sample(post, 10_100, 10_400, complete)
    client.meta["clock_sync"] = est.as_dict()
    return [server.finish(), client.finish()], hex_id


class TestMergeRecoversSkew:
    @pytest.mark.parametrize("skew_ns", [0, 5_000, -3_000_000_000, 10**12])
    def test_spans_nest_after_alignment(self, skew_ns):
        shards, hex_id = _shards(skew_ns)
        merged = merge_shards(shards)
        assert merged.problems() == []
        [join] = merged.cross_process
        assert join.trace == hex_id
        assert join.post_ns <= join.dispatch_ns + join.slack_ns
        assert join.done_ns <= join.complete_ns + join.slack_ns
        assert join.nested

    def test_recovered_offset_matches_injection(self):
        shards, _ = _shards(skew_ns=5_000_000)
        merged = merge_shards(shards)
        # Shard order is server first; the client's applied offset is the
        # injected skew exactly (symmetric synthetic exchange).
        assert merged.offsets == [0, 5_000_000]

    def test_drift_tolerated_within_slack(self):
        # 500 ppm drift over a 500 ns window perturbs readings by far
        # less than the rtt/2 slack, so nesting still holds.
        shards, _ = _shards(skew_ns=1_000_000, drift_ppm=500)
        merged = merge_shards(shards)
        assert merged.problems() == []

    def test_flows_point_forward(self):
        shards, _ = _shards(skew_ns=-2_000_000_000)
        merged = merge_shards(shards)
        trace = merged.to_chrome()
        starts = {e["id"]: e["ts"] for e in trace["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"]: e["ts"] for e in trace["traceEvents"] if e["ph"] == "f"}
        assert starts and set(starts) == set(finishes)
        for flow_id, start_ts in starts.items():
            assert finishes[flow_id] >= start_ts
