"""Length-prefixed stream framing (repro.net.framing)."""

import struct

import pytest

from repro.net.framing import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FramingError,
    encode_frame,
)


class TestEncodeFrame:
    def test_prefix_is_body_length(self):
        frame = encode_frame(b"abc")
        assert frame == struct.pack("!I", 3) + b"abc"

    def test_empty_body(self):
        assert encode_frame(b"") == struct.pack("!I", 0)

    def test_oversize_body_rejected(self):
        with pytest.raises(FramingError, match="limit"):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


class TestFrameDecoder:
    def test_round_trip_one_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_feed(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"hello")
        collected = []
        for index in range(len(frame)):
            collected.extend(decoder.feed(frame[index:index + 1]))
        assert collected == [b"hello"]

    def test_many_frames_in_one_feed(self):
        bodies = [b"a", b"", b"ccc", bytes(range(256))]
        stream = b"".join(encode_frame(b) for b in bodies)
        assert FrameDecoder().feed(stream) == bodies

    def test_split_across_feeds(self):
        frame = encode_frame(b"split me")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:6]) == []
        assert decoder.pending_bytes == 6
        assert decoder.feed(frame[6:] + encode_frame(b"next")) == [
            b"split me", b"next",
        ]

    def test_hostile_length_rejected_before_allocation(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError, match="exceeds limit"):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_partial_prefix_is_not_a_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        assert decoder.pending_bytes == 2
