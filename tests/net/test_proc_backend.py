"""The real-process backend: registry dispatch, echo RPCs over asyncio
loopback sockets, reconnect recovery, and obs reuse.

There is no pytest-asyncio in the toolchain; each test drives its
scenario with ``asyncio.run`` directly.
"""

import asyncio

import pytest

from repro.core.message import RpcResponse, decode_request, encode_response
from repro.net import (
    ProcRpcClient,
    ProcRpcServer,
    StreamServerTransport,
    TransportClosed,
)
from repro.obs import Observer
from repro.transport import (
    BACKENDS,
    Endpoint,
    Topology,
    TransportError,
    backend_names,
    get,
)

LOOPBACK = Endpoint("127.0.0.1", 0)


def _echo(request):
    return request.payload


class TestRegistryBackendDimension:
    def test_backend_names(self):
        assert backend_names() == BACKENDS == ("sim", "proc")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(TransportError, match="sim.*proc"):
            get("scalerpc").server_cls_for("bogus")

    def test_every_transport_builds_a_proc_server(self):
        from repro.transport import names

        for name in names():
            server = get(name).build_server(LOOPBACK, _echo, backend="proc")
            assert isinstance(server, ProcRpcServer)
            assert server.transport_name == name

    def test_topology_rejects_unknown_backend(self):
        with pytest.raises(TransportError, match="backend"):
            Topology.build(backend="bogus")

    def test_proc_topology_has_endpoints_not_sim(self):
        topo = Topology.build(backend="proc")
        assert topo.backend == "proc"
        assert topo.sim is None
        assert topo.endpoint.host == "127.0.0.1"

    def test_proc_topology_base_port(self):
        topo = Topology.build(backend="proc", base_port=9000)
        assert topo.endpoint.port == 9000


class TestEchoOverLoopback:
    def test_sync_call_round_trips(self):
        async def scenario():
            server = ProcRpcServer(LOOPBACK, _echo)
            await server.start()
            client = server.connect()
            await client.connect()
            response = await client.sync_call("echo", payload={"n": [1, 2]})
            await client.close()
            await server.stop()
            return response, server.stats

        response, stats = asyncio.run(scenario())
        assert response.payload == {"n": [1, 2]}
        assert not response.failed
        assert stats.completed == 1 and stats.failed == 0

    def test_batched_calls_complete_in_order(self):
        async def scenario():
            server = ProcRpcServer(LOOPBACK, _echo)
            await server.start()
            client = server.connect()
            await client.connect()
            handles = [
                await client.async_call("echo", payload=i) for i in range(8)
            ]
            await client.flush()
            responses = await client.poll_completions(handles)
            await client.close()
            await server.stop()
            return responses, client.completed

        responses, completed = asyncio.run(scenario())
        assert [r.payload for r in responses] == list(range(8))
        assert completed == 8

    def test_handler_exception_fails_the_rpc_not_the_server(self):
        def handler(request):
            if request.payload == "bad":
                raise ValueError("no")
            return "ok"

        async def scenario():
            server = ProcRpcServer(LOOPBACK, handler)
            await server.start()
            client = server.connect()
            await client.connect()
            bad = await client.sync_call("op", payload="bad")
            good = await client.sync_call("op", payload="fine")
            await client.close()
            await server.stop()
            return bad, good, server.stats

        bad, good, stats = asyncio.run(scenario())
        assert bad.failed and "ValueError" in bad.payload
        assert not good.failed and good.payload == "ok"
        assert stats.failed == 1 and stats.completed == 2

    def test_registry_built_server_serves(self):
        async def scenario():
            server = get("scalerpc").build_server(LOOPBACK, _echo, backend="proc")
            await server.start()
            client = server.connect()
            await client.connect()
            response = await client.sync_call("echo", payload="via-registry")
            await client.close()
            await server.stop()
            return response

        assert asyncio.run(scenario()).payload == "via-registry"


class TestReconnectRecovery:
    def test_dropped_connection_reposts_in_flight(self):
        # A flaky server: drops the connection on the first request, then
        # serves normally.  The client must reconnect and repost.
        seen = []

        async def flaky(connection, body):
            request = decode_request(body)
            seen.append(request.req_id)
            if len(seen) == 1:
                await connection.close()
                return
            connection.send(encode_response(RpcResponse(
                req_id=request.req_id, client_id=request.client_id,
                payload="recovered",
            )))
            await connection.drain()

        async def scenario():
            listener = StreamServerTransport(LOOPBACK, flaky)
            endpoint = await listener.start()
            client = ProcRpcClient(endpoint, backoff_s=0.01)
            await client.connect()
            response = await client.sync_call("echo", payload="x")
            reconnects = client.reconnects
            await client.close()
            await listener.stop()
            return response, reconnects

        response, reconnects = asyncio.run(scenario())
        assert response.payload == "recovered"
        assert reconnects == 1
        assert len(seen) == 2 and seen[0] == seen[1]  # same req_id reposted

    def test_exhausted_reconnect_fails_outstanding_calls(self):
        async def scenario():
            listener = StreamServerTransport(
                LOOPBACK, lambda connection, body: None
            )
            endpoint = await listener.start()
            client = ProcRpcClient(endpoint, max_attempts=1, backoff_s=0.01)
            await client.connect()
            await listener.stop()  # the server is gone for good
            try:
                with pytest.raises(TransportClosed):
                    await client.sync_call("echo", payload="x")
            finally:
                await client.close()
            return client.outstanding

        assert asyncio.run(scenario()) == 0


class TestObsReuse:
    def test_proc_path_emits_sim_stage_names(self):
        obs = Observer(meta={"backend": "proc"})

        async def scenario():
            server = ProcRpcServer(LOOPBACK, _echo, obs=obs)
            await server.start()
            client = server.connect()
            await client.connect()
            await client.sync_call("echo", payload="traced")
            await client.close()
            await server.stop()

        asyncio.run(scenario())
        artifact = obs.finish()
        stages = {
            stage[0] for rpc in artifact["rpcs"] for stage in rpc["stages"]
        }
        # The same lifecycle vocabulary the sim backend emits.
        assert {"post", "dispatch", "exec", "done", "complete"} <= stages
        tracks = {span["track"] for span in artifact["spans"]}
        assert "server.scalerpc" in tracks


class TestSubprocessSmoke:
    def test_one_server_two_client_processes(self):
        from repro.net import ProcWorkload, run_proc_workload

        workload = ProcWorkload(n_clients=2, ops_per_client=6, batch_size=3)
        result = run_proc_workload(workload)
        assert result.completed_ops == workload.requested_ops == 12
        assert result.server["completed"] == 12
        assert result.obs_spans > 0 and result.obs_rpcs > 0
        assert result.wall_ns > 0
