"""Distributed tracing across the proc backend, end to end.

One real workload run (1 server + 2 client subprocesses over loopback)
exports per-process shards; the merge must stitch every RPC across
process boundaries with deterministic ids, nested spans, and
forward-pointing flow events — and re-merging the same shards must
produce byte-identical output.
"""

import json

import pytest

from repro.net import ProcWorkload, run_proc_workload
from repro.obs import MergeError, load_jsonl, merge_dir, validate_chrome_trace
from repro.obs.dist import (
    format_trace_id,
    merge_shards,
    rpc_trace_id,
    span_id,
    write_merged_chrome_trace,
)

CLIENTS = 2
OPS = 8


@pytest.fixture(scope="module")
def shard_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    result = run_proc_workload(ProcWorkload(
        transport="scalerpc", n_clients=CLIENTS, ops_per_client=OPS,
        batch_size=2, timeout_s=120.0, obs_export_dir=str(directory),
        client_skew_ns=-1_500_000_000,  # clients run 1.5 s behind
    ))
    assert result.completed_ops == CLIENTS * OPS
    return directory


class TestDeterministicIds:
    def test_trace_id_pure_function_of_identity(self):
        assert rpc_trace_id(3, 17) == rpc_trace_id(3, 17)
        assert rpc_trace_id(3, 17) != rpc_trace_id(3, 18)
        assert rpc_trace_id(3, 17) != rpc_trace_id(4, 17)

    def test_trace_id_never_zero(self):
        assert all(rpc_trace_id(c, r) for c in range(4) for r in range(1, 64))

    def test_span_ids_differ_by_role(self):
        trace = rpc_trace_id(0, 1)
        assert span_id(trace, "client") != span_id(trace, "server")

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="client"):
            span_id(1, "observer")

    def test_format_is_16_hex(self):
        formatted = format_trace_id(rpc_trace_id(1, 2))
        assert len(formatted) == 16
        int(formatted, 16)


class TestMergeErrors:
    def test_missing_directory_actionable(self, tmp_path):
        with pytest.raises(MergeError, match="--obs-dir"):
            merge_dir(tmp_path / "never_exported")

    def test_empty_directory_actionable(self, tmp_path):
        with pytest.raises(MergeError, match="obs.jsonl"):
            merge_dir(tmp_path)

    def test_no_shards_at_all(self):
        with pytest.raises(MergeError, match="no shards"):
            merge_shards([])


class TestProcMerge:
    def test_one_shard_per_process(self, shard_dir):
        names = sorted(p.name for p in shard_dir.glob("*.obs.jsonl"))
        assert len(names) == CLIENTS + 1
        assert sum("server" in n for n in names) == 1

    def test_every_rpc_joins_across_processes(self, shard_dir):
        merged = merge_dir(shard_dir)
        assert merged.artifact["meta"]["joined_rpcs"] == CLIENTS * OPS
        assert merged.artifact["meta"]["cross_process_rpcs"] == CLIENTS * OPS
        assert merged.problems() == []

    def test_ids_match_recomputation(self, shard_dir):
        # The ids in the shards are pure functions of (client_id, req_id):
        # recompute them from scratch and demand full overlap.
        merged = merge_dir(shard_dir)
        seen = {j.trace for j in merged.joined}
        expected = {
            format_trace_id(rpc_trace_id(client_id, req_id))
            for client_id in range(1, CLIENTS + 1)  # worker ids are 1-based
            for req_id in range(1, OPS + 1)
        }
        assert seen == expected

    def test_injected_skew_recovered(self, shard_dir):
        merged = merge_dir(shard_dir)
        # Client offsets must recover the 1.5 s injected skew (plus the
        # small real process-start delta, bounded by the rtt slack).
        for offset, shard in zip(merged.offsets[1:], merged.shards[1:]):
            slack = shard["meta"]["clock_sync"]["rtt_ns"]
            assert offset == pytest.approx(1_500_000_000, abs=slack + 10**9)

    def test_merged_chrome_trace_valid_with_flows(self, shard_dir, tmp_path):
        merged = merge_dir(shard_dir)
        out = tmp_path / "merged.trace.json"
        assert write_merged_chrome_trace(merged, out) == []
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert len(pids) == CLIENTS + 1
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert flows
        # Every flow finish binds to its enclosing slice and crosses pids.
        for event in flows:
            if event["ph"] == "f":
                assert event["bp"] == "e"
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event["pid"])
        assert any(len(set(pids_)) == 2 for pids_ in by_id.values())

    def test_remerge_is_byte_identical(self, shard_dir, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_merged_chrome_trace(merge_dir(shard_dir), a)
        write_merged_chrome_trace(merge_dir(shard_dir), b)
        assert a.read_bytes() == b.read_bytes()

    def test_client_shards_carry_clock_sync(self, shard_dir):
        for path in shard_dir.glob("*client*.obs.jsonl"):
            meta = load_jsonl(path)["meta"]
            sync = meta["clock_sync"]
            assert sync["n_samples"] >= 1
            assert sync["rtt_ns"] > 0

    def test_merge_without_server_shard_degrades(self, shard_dir):
        shards = [
            load_jsonl(path)
            for path in sorted(shard_dir.glob("*client*.obs.jsonl"))
        ]
        merged = merge_shards(shards)
        assert merged.artifact["meta"]["cross_process_rpcs"] == 0
        assert merged.artifact["meta"]["joined_rpcs"] == CLIENTS * OPS
