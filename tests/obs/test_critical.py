"""Tests for the critical-path analyzer and cliff detection."""

from repro.obs import detect_cliff, stage_breakdown


def _rpc(rid, *stages):
    return {"id": rid, "stages": [list(s) for s in stages]}


class TestStageBreakdown:
    def test_intervals_attributed_to_later_stage(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 100), ("exec", 400), ("complete", 1000)
        )]}
        breakdown = stage_breakdown(artifact, percentile=99.0)
        stages = dict((name, mean) for name, mean, _share in breakdown.stages)
        assert stages == {"req_tx": 100, "exec": 300, "complete": 600}
        assert breakdown.latency_ns == 1000
        assert breakdown.count == breakdown.tail_count == 1

    def test_miss_stall_split_out(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 100, {"miss_stall": 40}), ("complete", 200)
        )]}
        breakdown = stage_breakdown(artifact)
        stages = {name: mean for name, mean, _ in breakdown.stages}
        assert stages["req_tx"] == 60
        assert stages["req_tx.miss_stall"] == 40

    def test_stall_clamped_to_interval(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 50, {"miss_stall": 500}), ("complete", 100)
        )]}
        breakdown = stage_breakdown(artifact)
        stages = {name: mean for name, mean, _ in breakdown.stages}
        assert stages["req_tx.miss_stall"] == 50
        assert stages["req_tx"] == 0

    def test_tail_selection(self):
        rpcs = [
            _rpc(i, ("post", 0), ("complete", latency))
            for i, latency in enumerate([100] * 98 + [1000, 2000])
        ]
        breakdown = stage_breakdown({"rpcs": rpcs}, percentile=99.0)
        assert breakdown.count == 100
        assert breakdown.latency_ns == 1000
        assert breakdown.tail_count == 2  # the 1000 and the 2000
        stages = {name: mean for name, mean, _ in breakdown.stages}
        assert stages["complete"] == 1500

    def test_incomplete_timelines_ignored(self):
        artifact = {"rpcs": [
            _rpc(0, ("post", 0)),  # never completed
            _rpc(1, ("post", 0), ("complete", 10)),
        ]}
        assert stage_breakdown(artifact).count == 1

    def test_none_when_nothing_completed(self):
        assert stage_breakdown({"rpcs": [_rpc(0, ("post", 0))]}) is None
        assert stage_breakdown({"rpcs": []}) is None

    def test_rows_in_lifecycle_order(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 10), ("dispatch", 30), ("exec", 60),
            ("done", 100), ("complete", 150)
        )]}
        names = [name for name, _m, _s in stage_breakdown(artifact).stages]
        assert names == ["req_tx", "dispatch", "exec", "done", "complete"]

    def test_shares_sum_to_one(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 40), ("complete", 100)
        )]}
        shares = [share for _n, _m, share in stage_breakdown(artifact).stages]
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_top_sorted_by_mean(self):
        artifact = {"rpcs": [_rpc(
            0, ("post", 0), ("req_tx", 10), ("exec", 100), ("complete", 120)
        )]}
        top = stage_breakdown(artifact).top(2)
        assert [name for name, _m, _s in top] == ["exec", "complete"]


class TestDetectCliff:
    def test_finds_drop_below_running_peak(self):
        points = [[100, 10.0], [200, 12.0], [300, 11.0], [400, 5.0]]
        cliff = detect_cliff(points, drop=0.3)
        assert cliff.index == 3 and cliff.ts == 400
        assert cliff.before == 12.0 and cliff.after == 5.0
        assert abs(cliff.ratio - 5.0 / 12.0) < 1e-9

    def test_tolerates_small_dips(self):
        points = [[100, 10.0], [200, 8.0], [300, 9.0]]
        assert detect_cliff(points, drop=0.3) is None

    def test_skips_none_values(self):
        points = [[100, 10.0], [200, None], [300, 2.0]]
        assert detect_cliff(points).ts == 300

    def test_empty_and_all_none(self):
        assert detect_cliff([]) is None
        assert detect_cliff([[100, None]]) is None
