"""Tests for the JSONL and Chrome trace-event exporters."""

import json

import pytest

from repro.obs import (
    Observer,
    load_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def artifact():
    obs = Observer(meta={"experiment": "unit"})
    obs.span("nic.server.tx", "write", 100, 250, {"bytes": 64})
    obs.span("server.server.worker0", "bench", 300, 900)
    obs.instant("server.sched", "slice_begin", 400, {"epoch": 1})
    obs.rpc_stage(7001, "post", 50)
    obs.rpc_stage(7001, "req_tx", 250, {"miss_stall": 30})
    obs.rpc_stage(7001, "complete", 1000)
    obs.rpc_stage(7002, "post", 60)
    obs.metrics.epoch_ns = 500
    counter = obs.metrics.counter("ops", rate=False)
    counter.add(2)
    obs.metrics.sample(500)
    return obs.finish()


class TestJsonl:
    def test_round_trip(self, artifact, tmp_path):
        path = tmp_path / "run.obs.jsonl"
        write_jsonl(artifact, path)
        assert load_jsonl(path) == artifact

    def test_one_record_per_line(self, artifact, tmp_path):
        path = tmp_path / "run.obs.jsonl"
        write_jsonl(artifact, path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert kinds.count("span") == len(artifact["spans"])
        assert kinds.count("rpc") == len(artifact["rpcs"])
        assert kinds.count("serie") == len(artifact["series"])

    def test_rpc_ids_are_dense_first_appearance(self, artifact):
        assert [rpc["id"] for rpc in artifact["rpcs"]] == [0, 1]


class TestChromeTrace:
    def test_valid_and_perfetto_shaped(self, artifact):
        trace = to_chrome_trace(artifact)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C", "b", "e"} <= phases
        # Track names are declared as thread metadata.
        thread_names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert "nic.server.tx" in thread_names
        # Spans become complete events with microsecond timestamps.
        [x] = [e for e in events if e["ph"] == "X" and e["name"] == "write"]
        assert x["ts"] == 0.1 and x["dur"] == 0.15  # 100 ns, 150 ns
        # The RPC timeline becomes balanced async begin/end pairs.
        assert len([e for e in events if e["ph"] == "b"]) == len(
            [e for e in events if e["ph"] == "e"]
        )

    def test_counter_series_skip_none_points(self):
        obs = Observer()
        obs.metrics.epoch_ns = 100
        obs.metrics.ratio("rate", "num", "den")
        obs.metrics.sample(100)  # denominator flat -> None point
        trace = to_chrome_trace(obs.finish())
        # The ratio's None point is skipped; its operand counters (zero
        # deltas) still export normally.
        counter_names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
        assert "rate" not in counter_names
        assert validate_chrome_trace(trace) == []

    def test_write_chrome_trace(self, artifact, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(artifact, path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestValidator:
    def test_flags_unknown_phase(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 0, "name": "x", "ts": 0}]}
        )
        assert problems

    def test_flags_negative_duration(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": 0, "dur": -1}
        ]})
        assert problems

    def test_flags_unbalanced_async(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "b", "pid": 1, "tid": 0, "name": "rpc", "ts": 0,
             "cat": "rpc", "id": 1}
        ]})
        assert problems


class TestEdgeCases:
    def test_empty_trace_valid(self):
        trace = to_chrome_trace(Observer().finish())
        assert validate_chrome_trace(trace) == []

    def test_single_span_trace(self):
        obs = Observer()
        obs.span("t", "only", 10, 20)
        trace = to_chrome_trace(obs.finish())
        assert validate_chrome_trace(trace) == []
        [x] = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x["name"] == "only"

    def test_drops_marker_is_global_instant(self):
        # The drops marker renders as a full-height ("g" scope) Perfetto
        # marker, so a truncated trace is visibly flagged.
        obs = Observer(max_records=1)
        obs.span("t", "a", 0, 1)
        obs.span("t", "b", 2, 3)
        trace = to_chrome_trace(obs.finish())
        [marker] = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "tracer.dropped"
        ]
        assert marker["s"] == "g"
        assert validate_chrome_trace(trace) == []

    def test_drops_marker_synthesized_from_meta(self):
        # An artifact whose meta counts drops but that carries no marker
        # instant (e.g. assembled by an external tool) still renders one.
        artifact = Observer().finish()
        artifact["meta"]["dropped"] = 3
        trace = to_chrome_trace(artifact)
        [marker] = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "tracer.dropped"
        ]
        assert marker["s"] == "g"
        assert marker["args"]["count"] == 3


class TestFlowValidation:
    @staticmethod
    def _flow(ph, ts, **extra):
        return {"ph": ph, "pid": 1, "tid": 0, "name": "hop", "ts": ts,
                "cat": "flow", "id": "f1", **extra}

    def test_forward_flow_valid(self):
        trace = {"traceEvents": [self._flow("s", 1.0), self._flow("f", 2.0)]}
        assert validate_chrome_trace(trace) == []

    def test_backward_flow_flagged(self):
        trace = {"traceEvents": [self._flow("s", 5.0), self._flow("f", 2.0)]}
        assert any("backward" in p for p in validate_chrome_trace(trace))

    def test_start_without_finish_flagged(self):
        trace = {"traceEvents": [self._flow("s", 1.0)]}
        assert any("without finish" in p for p in validate_chrome_trace(trace))

    def test_finish_without_start_flagged(self):
        trace = {"traceEvents": [self._flow("f", 1.0)]}
        assert validate_chrome_trace(trace)

    def test_duplicate_start_flagged(self):
        trace = {"traceEvents": [
            self._flow("s", 1.0), self._flow("s", 2.0), self._flow("f", 3.0),
        ]}
        assert validate_chrome_trace(trace)

    def test_flow_missing_id_flagged(self):
        event = {"ph": "s", "pid": 1, "tid": 0, "name": "hop", "ts": 1.0,
                 "cat": "flow"}
        assert validate_chrome_trace({"traceEvents": [event]})


class TestDropAccounting:
    def test_record_cap_counts_drops(self):
        obs = Observer(max_records=2)
        obs.span("t", "a", 0, 1)
        obs.instant("t", "b", 2)
        obs.span("t", "c", 3, 4)  # over the cap
        artifact = obs.finish()
        assert artifact["meta"]["dropped"] == 1
        # The capped records stay capped; the one extra instant is the
        # drops marker itself, recorded in the export so a truncated
        # trace is never mistaken for a complete one.
        markers = [
            inst for inst in artifact["instants"]
            if inst["track"] == "obs.drops"
        ]
        assert len(markers) == 1
        assert markers[0]["name"] == "tracer.dropped"
        assert markers[0]["args"]["count"] == 1
        assert len(artifact["spans"]) + len(artifact["instants"]) == 2 + 1

    def test_rpc_cap_counts_drops(self):
        obs = Observer(max_rpcs=1)
        obs.rpc_stage(1, "post", 0)
        obs.rpc_stage(2, "post", 1)  # new RPC over the cap
        obs.rpc_stage(1, "complete", 5)  # existing RPC still records
        artifact = obs.finish()
        assert artifact["meta"]["rpc_dropped"] == 1
        assert len(artifact["rpcs"]) == 1
        assert len(artifact["rpcs"][0]["stages"]) == 2
