"""Log-bucketed histograms and the anomaly detectors built on them."""

import pytest

from repro.obs.dist import _mix64
from repro.obs.hist import Anomaly, LogHistogram, detect_anomaly


def _pseudo_values(n, bits=48, salt=0):
    """Deterministic magnitude-spanning values (no RNG: detlint-clean)."""
    out = []
    for i in range(n):
        word = _mix64(i ^ (salt << 32))
        out.append((word >> (16 + (i % (64 - bits)))) % (1 << bits) + 1)
    return out


class TestBucketing:
    def test_exact_region(self):
        # Values below 2**sub_bits get a bucket each: no error at all.
        hist = LogHistogram()
        for value in range(16):
            assert hist.bucket_high(hist.bucket_index(value)) == value

    def test_relative_error_bound(self):
        hist = LogHistogram(sub_bits=4)
        for value in _pseudo_values(2000):
            high = hist.bucket_high(hist.bucket_index(value))
            assert value <= high
            assert (high - value) / value <= 1 / 16

    def test_finer_sub_bits_tighter_error(self):
        coarse, fine = LogHistogram(sub_bits=2), LogHistogram(sub_bits=6)
        value = 1_000_003
        err = lambda h: h.bucket_high(h.bucket_index(value)) - value  # noqa: E731
        assert err(fine) < err(coarse)

    def test_bucket_index_monotone(self):
        hist = LogHistogram()
        indexes = [hist.bucket_index(v) for v in range(1, 10_000)]
        assert indexes == sorted(indexes)


class TestRecording:
    def test_stats(self):
        hist = LogHistogram.from_values([5, 10, 20, 40])
        assert hist.total == 4
        assert hist.sum == 75
        assert hist.min == 5
        assert hist.max == 40

    def test_mean(self):
        assert LogHistogram.from_values([10, 20]).mean == 15

    def test_weighted_record(self):
        hist = LogHistogram()
        hist.record(100, count=5)
        assert hist.total == 5
        assert hist.sum == 500

    def test_percentile_exact_region(self):
        hist = LogHistogram.from_values(range(10))
        assert hist.percentile(50) == 4

    def test_percentile_clamped_to_max(self):
        hist = LogHistogram.from_values([1_000_000])
        assert hist.percentile(99.9) == 1_000_000

    def test_percentile_error_bound(self):
        values = sorted(_pseudo_values(5000, bits=30, salt=13))
        hist = LogHistogram.from_values(values)
        for p in (50, 90, 99, 99.9):
            exact = values[max(0, -(-int(p * len(values)) // 100) - 1)]
            approx = hist.percentile(p)
            assert abs(approx - exact) / exact <= 1 / 16 + 0.01

    def test_empty_percentile(self):
        assert LogHistogram().percentile(50) is None

    def test_merge(self):
        a = LogHistogram.from_values([1, 2, 3])
        b = LogHistogram.from_values([100, 200])
        a.merge(b)
        assert a.total == 5
        assert a.max == 200

    def test_merge_requires_same_resolution(self):
        with pytest.raises(ValueError, match="sub_bits"):
            LogHistogram(sub_bits=4).merge(LogHistogram(sub_bits=5))

    def test_buckets_round_trip_percentiles(self):
        hist = LogHistogram.from_values([10, 1000, 100_000] * 7)
        rebuilt = LogHistogram()
        for high, count in hist.as_buckets():
            rebuilt.record(high, count=count)
        assert rebuilt.percentile(50) == hist.percentile(50)


def _series(values, t0=0, dt=1000):
    return [[t0 + i * dt, v] for i, v in enumerate(values)]


class TestDetectAnomaly:
    def test_quiet_series_clean(self):
        anomalies = detect_anomaly(
            latency_p50=_series([100] * 10),
            latency_p99=_series([300] * 10),
            throughput=_series([50] * 10),
        )
        assert anomalies == []

    def test_tail_inflation(self):
        p50 = _series([100] * 10)
        p99 = _series([300] * 9 + [5000])
        anomalies = detect_anomaly(p50, p99, throughput=_series([50] * 10))
        kinds = [a.kind for a in anomalies]
        assert "tail-inflation" in kinds
        [anomaly] = [a for a in anomalies if a.kind == "tail-inflation"]
        assert anomaly.index == 9
        assert anomaly.value == 5000

    def test_throughput_cliff(self):
        throughput = _series([100] * 8 + [20, 20])
        anomalies = detect_anomaly(
            _series([100] * 10), _series([300] * 10), throughput
        )
        assert any(a.kind == "throughput-cliff" for a in anomalies)

    def test_slo_burn(self):
        p99 = _series([300] * 4 + [900] * 8)
        anomalies = detect_anomaly(
            _series([100] * 12), p99, _series([50] * 12),
            slo_ns=500, burn_budget=0.05, burn_window=8,
        )
        burns = [a for a in anomalies if a.kind == "slo-burn"]
        assert burns
        assert all(isinstance(a, Anomaly) for a in burns)

    def test_slo_within_budget_clean(self):
        # One excursion in a window of 20 stays under a 10% budget.
        p99 = _series([300] * 19 + [900])
        anomalies = detect_anomaly(
            _series([100] * 20), p99, _series([50] * 20),
            slo_ns=500, burn_budget=0.10, burn_window=20,
        )
        assert [a for a in anomalies if a.kind == "slo-burn"] == []
