"""End-to-end observability tests: hooks, determinism, zero-cost-off,
and the fatal-overrun sweep."""

import json

import pytest

from repro.bench import RpcExperiment, run_rpc_experiment
from repro.obs import Observer, current
from repro.obs.critical import STAGE_ORDER
from repro.rdma.fabric import Fabric
from repro.sim import Simulator


def _small(system="scalerpc", **kwargs):
    defaults = dict(
        system=system,
        n_clients=8,
        n_client_machines=2,
        warmup_ns=100_000,
        measure_ns=300_000,
        group_size=8,
        time_slice_ns=50_000,
    )
    defaults.update(kwargs)
    return run_rpc_experiment(RpcExperiment(**defaults))


class TestInstall:
    def test_install_uninstall(self):
        fabric = Fabric(Simulator())
        obs = Observer().install(fabric)
        assert fabric.obs is obs and current() is obs
        obs.uninstall()
        assert fabric.obs is None and current() is None

    def test_double_install_rejected(self):
        fabric = Fabric(Simulator())
        Observer().install(fabric)
        try:
            with pytest.raises(RuntimeError):
                Observer().install(fabric)
        finally:
            fabric.obs.uninstall()


class TestLifecycle:
    @pytest.mark.parametrize("system", ["scalerpc", "rawwrite", "herd", "fasst"])
    def test_observation_does_not_change_results(self, system):
        plain = _small(system)
        observed = _small(system, obs_enabled=True)
        assert observed.throughput_mops == plain.throughput_mops
        assert observed.completed_ops == plain.completed_ops
        assert observed.latency.mean_ns == plain.latency.mean_ns
        assert plain.obs is None and observed.obs is not None

    def test_artifact_byte_identical_across_same_seed_runs(self):
        first = _small(obs_enabled=True).obs
        second = _small(obs_enabled=True).obs
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_rpc_timelines_follow_lifecycle_order(self):
        artifact = _small(obs_enabled=True).obs
        order = {name: i for i, name in enumerate(STAGE_ORDER)}
        completed = 0
        for rpc in artifact["rpcs"]:
            stages = rpc["stages"]
            assert stages[0][0] == "post"
            times = [entry[1] for entry in stages]
            assert times == sorted(times), "stage timestamps must be monotonic"
            names = {entry[0] for entry in stages}
            assert names <= set(order), f"unknown stages: {names - set(order)}"
            if "complete" in names:
                completed += 1
                assert "exec" in names and "done" in names
        assert completed > 0

    def test_epoch_series_present_and_aligned(self):
        artifact = _small(obs_enabled=True, obs_epoch_ns=50_000).obs
        series = {s["name"]: s for s in artifact["series"]}
        assert "rpc.completed_per_s" in series
        assert "nic.server.conn_hit_rate" in series
        assert "llc.server.ddio_resident_lines" in series
        for record in series.values():
            assert record["epoch_ns"] == 50_000
            for ts, _value in record["points"]:
                assert ts % 50_000 == 0
        rates = [v for _t, v in series["rpc.completed_per_s"]["points"]]
        assert max(rate for rate in rates if rate is not None) > 0

    def test_spans_cover_the_message_path(self):
        artifact = _small(obs_enabled=True).obs
        tracks = sorted({span["track"] for span in artifact["spans"]})
        assert any(t.startswith("nic.server.rx") for t in tracks)
        assert any(t.startswith("nic.m") for t in tracks)  # client machines
        assert any(t.startswith("server.server.worker") for t in tracks)


class TestFatalOverrunSweep:
    @pytest.mark.no_sanitize  # stopped clients leak CQ entries by design
    def test_herd_clients_die_and_throughput_halves(self):
        result = _small(
            "herd",
            n_clients=8,
            obs_enabled=True,
            obs_epoch_ns=50_000,
            cq_overrun_fatal=True,
            stop_polling_after_ns=300_000,
            stop_polling_fraction=0.5,
        )
        artifact = result.obs
        stops = [i for i in artifact["instants"] if i["name"] == "stop_polling"]
        assert len(stops) == 4
        series = {s["name"]: s["points"] for s in artifact["series"]}
        # Unpolled completions pile up in the stopped clients' recv CQs.
        assert max(v for _t, v in series["cq.clients.depth"]) > 0
        rate = series["rpc.completed_per_s"]
        before = max(v for t, v in rate if t <= 300_000)
        after = [v for t, v in rate if 500_000 < t <= 900_000]
        assert after, "window must extend past the stop event"
        assert max(after) < before, "survivors cannot exceed the full fleet"

    @pytest.mark.no_sanitize
    def test_scalerpc_survivors_keep_completing(self):
        result = _small(
            obs_enabled=True,
            cq_overrun_fatal=True,
            stop_polling_after_ns=300_000,
            stop_polling_fraction=0.5,
        )
        rate = next(
            s["points"] for s in result.obs["series"]
            if s["name"] == "rpc.completed_per_s"
        )
        after = [v for t, v in rate if 500_000 < t <= 900_000]
        assert sum(after) > 0, "the surviving half must still complete RPCs"


class TestObsCli:
    def test_summarize_and_export(self, tmp_path, capsys):
        from repro.obs import write_jsonl
        from repro.obs.__main__ import main

        artifact = _small(obs_enabled=True).obs
        path = tmp_path / "run.obs.jsonl"
        write_jsonl(artifact, path)
        chrome = tmp_path / "run.trace.json"
        assert main([str(path), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "wrote Chrome trace (valid)" in out
        assert chrome.exists()
