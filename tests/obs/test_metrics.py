"""Tests for the epoch time-series registry."""

import pytest

from repro.obs import MetricsRegistry
from repro.sim import NS_PER_S, Simulator


class TestCounterSeries:
    def test_counter_records_epoch_deltas(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        reg.epoch_ns = 1000
        c.add(3)
        reg.sample(1000)
        c.add(2)
        reg.sample(2000)
        reg.sample(3000)  # no movement
        [series] = reg.as_records()
        assert series["name"] == "ops"
        assert series["points"] == [[1000, 3], [2000, 2], [3000, 0]]

    def test_counter_rate_scaling(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", rate=True)
        reg.epoch_ns = 1000
        c.add(5)
        reg.sample(1000)
        [series] = reg.as_records()
        assert series["points"] == [[1000, 5 * NS_PER_S / 1000]]

    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestDerivedSeries:
    def test_gauge_samples_callable(self):
        reg = MetricsRegistry()
        box = {"v": 7}
        reg.gauge("depth", lambda: box["v"])
        reg.epoch_ns = 10
        reg.sample(10)
        box["v"] = 9
        reg.sample(20)
        [series] = reg.as_records()
        assert series["points"] == [[10, 7], [20, 9]]

    def test_ratio_none_when_denominator_flat(self):
        reg = MetricsRegistry()
        reg.ratio("hit_rate", "hits", "accesses")
        hits, accesses = reg.counter("hits"), reg.counter("accesses")
        reg.epoch_ns = 10
        hits.add(3)
        accesses.add(4)
        reg.sample(10)
        reg.sample(20)  # nothing moved: ratio undefined
        records = {r["name"]: r for r in reg.as_records()}
        assert records["hit_rate"]["points"] == [[10, 0.75], [20, None]]

    def test_rate_fn_tracks_cumulative_callable(self):
        reg = MetricsRegistry()
        box = {"total": 0}
        reg.rate_fn("ops_per_s", lambda: box["total"])
        reg.epoch_ns = 1000
        box["total"] = 4
        reg.sample(1000)
        box["total"] = 10
        reg.sample(2000)
        [series] = reg.as_records()
        assert series["points"] == [
            [1000, 4 * NS_PER_S / 1000],
            [2000, 6 * NS_PER_S / 1000],
        ]

    def test_ratio_fn_delta_ratio(self):
        reg = MetricsRegistry()
        box = {"num": 0, "den": 0}
        reg.ratio_fn("r", lambda: box["num"], lambda: box["den"])
        reg.epoch_ns = 10
        box["num"], box["den"] = 1, 2
        reg.sample(10)
        box["num"], box["den"] = 1, 2  # flat epoch
        reg.sample(20)
        [series] = reg.as_records()
        assert series["points"] == [[10, 0.5], [20, None]]


class TestSampler:
    def test_sampler_runs_on_epoch_boundaries_and_stops(self):
        sim = Simulator()
        reg = MetricsRegistry()
        ticks = {"n": 0}

        def bump():
            while True:
                yield sim.timeout(101)  # off the epoch grid: no tie-break races
                ticks["n"] += 1

        sim.process(bump(), name="bump")
        reg.gauge("ticks", lambda: ticks["n"])
        reg.start(sim, epoch_ns=250)
        sim.run(until=1000)
        reg.stop()
        # Stopping lets the simulation drain instead of ticking forever.
        sim.run(until=2000)
        [series] = reg.as_records()
        assert series["epoch_ns"] == 250
        assert series["points"][:4] == [[250, 2], [500, 4], [750, 7], [1000, 9]]
        assert len(series["points"]) <= 5  # at most one epoch after stop()

    def test_start_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            MetricsRegistry().start(Simulator(), epoch_ns=0)
