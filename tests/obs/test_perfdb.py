"""The perf-history trajectory and its noise-aware regression gate."""

import json

import pytest

from repro.obs.perfdb import (
    HISTORY_SCHEMA,
    append_entry,
    check_entry,
    load_history,
    make_entry,
)


def _entry(fig8_wall_s=5.0, eps=1_000_000, p50=800_000, p99=2_000_000,
           label="t"):
    return make_entry(label=label, kind="test", metrics={
        "kernel_events_per_s": eps,
        "fig8_wall_s": fig8_wall_s,
        "proc_rtt_p50_ns": p50,
        "proc_rtt_p99_ns": p99,
    })


def _flat_history(n=8, **kwargs):
    return [_entry(**kwargs) for _ in range(n)]


class TestEntries:
    def test_make_entry_requires_calibrator(self):
        with pytest.raises(ValueError, match="kernel_events_per_s"):
            make_entry("x", "test", {"fig8_wall_s": 1.0})

    def test_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_entry(path, _entry())
        append_entry(path, _entry(label="u"))
        history = load_history(path)
        assert [h["label"] for h in history] == ["t", "u"]
        assert all(h["schema"] == HISTORY_SCHEMA for h in history)

    def test_missing_file_is_empty_trajectory(self, tmp_path):
        assert load_history(tmp_path / "never.jsonl") == []

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps({"schema": 99}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            load_history(path)

    def test_garbage_line_located(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="1"):
            load_history(path)


class TestGate:
    def test_empty_history_passes_vacuously(self):
        assert check_entry([], _entry()) == []

    def test_flat_history_same_run_passes(self):
        assert check_entry(_flat_history(), _entry()) == []

    def test_synthetic_slowdown_fails(self):
        # The acceptance check: a ~1.5x fig8 slowdown on identical
        # hardware must trip the gate against a flat history.
        regressions = check_entry(_flat_history(), _entry(fig8_wall_s=7.5))
        assert [r.metric for r in regressions] == ["fig8_wall_s"]
        [regression] = regressions
        assert regression.ratio == pytest.approx(1.5)
        assert "1.5" in regression.describe()

    def test_calibration_cancels_machine_speed(self):
        # Same workload on a machine 1.43x slower: every wall metric
        # stretches by exactly the probe's slowdown, so the calibrated
        # product is unchanged and nothing alarms.  (A >1.5x machine
        # would trip the raw kernel-rate tripwire by design.)
        history = _flat_history()
        slow_machine = _entry(fig8_wall_s=5.0 * 10 / 7, eps=700_000,
                              p50=800_000 * 10 // 7, p99=2_000_000 * 10 // 7)
        assert check_entry(history, slow_machine) == []

    def test_genuine_regression_not_masked_by_fast_machine(self):
        # Twice-as-fast machine, but the benchmark only got 1.3x faster:
        # calibrated, that is a 1.53x regression.
        history = _flat_history()
        entry = _entry(fig8_wall_s=5.0 / 1.3, eps=2_000_000,
                       p50=400_000, p99=1_000_000)
        regressions = check_entry(history, entry)
        assert [r.metric for r in regressions] == ["fig8_wall_s"]

    def test_noisy_history_widens_threshold(self):
        # +-20% historical wobble: a 1.25x run is within 3x the MAD and
        # must not alarm, though it would fail against a flat history.
        noisy = [_entry(fig8_wall_s=w) for w in (4.0, 6.0, 4.2, 5.8, 4.1, 5.9)]
        assert check_entry(noisy, _entry(fig8_wall_s=6.25)) == []
        assert check_entry(_flat_history(), _entry(fig8_wall_s=6.25)) != []

    def test_kernel_rate_gated_raw(self):
        # An order-of-magnitude kernel collapse fails even though every
        # wall metric is "calibrated away" by the same collapse.
        entry = _entry(fig8_wall_s=50.0, eps=100_000,
                       p50=8_000_000, p99=20_000_000)
        regressions = check_entry(_flat_history(), entry)
        assert [r.metric for r in regressions] == ["kernel_events_per_s"]

    def test_window_limits_lookback(self):
        # Old slow entries roll out of the window: only the recent fast
        # ones set the bar, so the slow run fails.
        history = _flat_history(8, fig8_wall_s=9.0) + _flat_history(8)
        regressions = check_entry(history, _entry(fig8_wall_s=7.5), window=8)
        assert [r.metric for r in regressions] == ["fig8_wall_s"]
        assert check_entry(history, _entry(fig8_wall_s=7.5), window=0) == []

    def test_metric_absent_from_entry_skipped(self):
        entry = make_entry("x", "test", {
            "kernel_events_per_s": 1_000_000, "fig8_wall_s": 5.0,
        })
        assert check_entry(_flat_history(), entry) == []

    def test_budget_override(self):
        regressions = check_entry(
            _flat_history(), _entry(fig8_wall_s=5.6),
            budgets={"fig8_wall_s": 0.05},
        )
        assert [r.metric for r in regressions] == ["fig8_wall_s"]
        assert check_entry(
            _flat_history(), _entry(fig8_wall_s=5.6),
            budgets={"fig8_wall_s": 0.25},
        ) == []


class TestCommittedHistory:
    def test_repo_history_loads_and_gates(self):
        from repro.obs.perfdb import default_history_path

        history = load_history(default_history_path())
        assert len(history) >= 1
        # The committed trajectory must accept its own latest entry.
        assert check_entry(history[:-1], history[-1]) == []
