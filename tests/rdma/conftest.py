"""Shared fixtures for RDMA substrate tests."""

import pytest

from repro.rdma import Fabric, Node, Transport
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return Fabric(sim)


@pytest.fixture
def nodes(sim, fabric):
    """Two connected nodes (a, b)."""
    return Node(sim, "a", fabric), Node(sim, "b", fabric)


@pytest.fixture
def rc_pair(nodes):
    """A connected RC QP pair (qp on a, peer on b)."""
    a, b = nodes
    qp_a = a.create_qp(Transport.RC)
    qp_b = b.create_qp(Transport.RC)
    qp_a.connect(qp_b)
    return qp_a, qp_b
