"""CQ overrun as a hard failure, and the graduated always-on asserts.

A real CQ is created with a fixed ``cqe`` count; when the application
stops polling and the HCA runs out of CQE slots it raises
IBV_EVENT_CQ_ERR and the attached QPs enter the error state.  With
``overrun_fatal=True`` the model reproduces that failure mode instead of
treating depth as a soft accounting limit.
"""

import pytest

from repro.rdma import Transport
from repro.rdma.cq import CompletionQueue
from repro.rdma.verbs import VerbError, post_recv, post_write
from repro.sim.engine import SimulationError


def _connected_pair_with_scq(nodes, depth, overrun_fatal):
    a, b = nodes
    scq = CompletionQueue(a.sim, name="client.scq", depth=depth,
                          overrun_fatal=overrun_fatal)
    qp_a = a.create_qp(Transport.RC, send_cq=scq)
    qp_b = b.create_qp(Transport.RC)
    qp_a.connect(qp_b)
    return qp_a, qp_b, scq


def _post_signaled_writes(sim, qp_a, qp_b, count):
    region = qp_b.node.register_memory(4096)
    for i in range(count):
        post_write(qp_a, local_addr=0, remote_addr=region.range.base,
                   size=64, payload=i)
    sim.run()


def test_stopped_polling_client_overruns_and_kills_qp(sim, nodes):
    """A client that stops polling its send CQ loses the connection."""
    qp_a, qp_b, scq = _connected_pair_with_scq(nodes, depth=4, overrun_fatal=True)
    _post_signaled_writes(sim, qp_a, qp_b, count=7)

    assert scq.overran
    assert scq.dropped == 3
    assert scq.pushed == 4  # dropped completions are never counted pushed
    assert scq.pushed == scq.polled + scq.drained + len(scq)
    assert not qp_a.is_ready  # IBV_EVENT_CQ_ERR -> QP ERROR
    # Further posts on the broken QP are rejected outright.
    with pytest.raises(VerbError):
        post_write(qp_a, local_addr=0, remote_addr=0, size=64)


@pytest.mark.no_sanitize  # exceeding depth IS the cq-overflow finding
def test_default_cq_keeps_accounting_semantics(sim, nodes):
    """Without the flag, depth stays a soft limit: nothing is dropped."""
    qp_a, qp_b, scq = _connected_pair_with_scq(nodes, depth=4, overrun_fatal=False)
    _post_signaled_writes(sim, qp_a, qp_b, count=7)

    assert not scq.overran
    assert scq.dropped == 0
    assert scq.pushed == 7
    assert len(scq) == 7  # over depth; SimSanitizer's cq-overflow territory
    assert qp_a.is_ready


def test_overrun_only_kills_attached_qps(sim, nodes):
    """The peer QP uses its own CQs and survives the client's overrun."""
    qp_a, qp_b, _scq = _connected_pair_with_scq(nodes, depth=1, overrun_fatal=True)
    _post_signaled_writes(sim, qp_a, qp_b, count=3)
    assert not qp_a.is_ready
    assert qp_b.is_ready


def test_drained_counter_balances_event_interface(sim, nodes):
    """pushed == polled + drained + queued holds across both interfaces."""
    qp_a, qp_b, scq = _connected_pair_with_scq(nodes, depth=64, overrun_fatal=False)
    region = qp_b.node.register_memory(4096)
    seen = []

    def consumer(sim):
        for _ in range(2):
            completion = yield scq.get_event()
            seen.append(completion.wr_id)

    sim.process(consumer(sim), name="consumer")
    for i in range(5):
        post_write(qp_a, local_addr=0, remote_addr=region.range.base,
                   size=64, payload=i)
    sim.run()

    assert scq.drained == 2
    scq.poll()
    assert scq.polled == 3
    assert scq.pushed == scq.polled + scq.drained + len(scq) == 5


def test_qp_close_asserts_recv_wqe_conservation(sim, nodes):
    a, _b = nodes
    qp = a.create_qp(Transport.UD)
    region = a.register_memory(4096)
    for i in range(3):
        post_recv(qp, region.range.base + 64 * i, 64)
    qp.consume_recv_wqe()
    qp.close()  # 3 posted == 1 consumed + 2 queued
    assert not qp.is_ready


@pytest.mark.no_sanitize  # deliberately corrupts QP accounting
def test_qp_close_catches_lost_receive(sim, nodes):
    a, _b = nodes
    qp = a.create_qp(Transport.UD)
    region = a.register_memory(4096)
    post_recv(qp, region.range.base, 64)
    qp.recv_queue.clear()  # a receive vanishes without being consumed
    with pytest.raises(AssertionError, match="recv WQE conservation"):
        qp.close()


@pytest.mark.no_sanitize  # deliberately corrupts resource occupancy
def test_resource_occupancy_assert_is_always_on(sim):
    from repro.sim.resources import Resource

    resource = Resource(sim, capacity=2, name="pipeline")
    resource.request()
    resource._in_use = 7  # corruption: occupancy beyond capacity
    with pytest.raises((AssertionError, SimulationError)):
        resource.request()
