"""Packet-loss injection: unreliable transports lose, RC never does."""

import pytest

from repro.rdma import (
    Fabric,
    Node,
    Transport,
    WireParams,
    post_recv,
    post_send,
    post_write,
)
from repro.sim import Simulator


def lossy_fabric(loss=0.3, seed=1):
    sim = Simulator()
    return sim, Fabric(sim, WireParams(loss_rate=loss), seed=seed)


class TestWireParams:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            WireParams(loss_rate=-0.1)
        with pytest.raises(ValueError):
            WireParams(loss_rate=1.0)


class TestRcNeverLoses:
    def test_all_rc_writes_delivered(self):
        sim, fabric = lossy_fabric(loss=0.5)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        qp_a, qp_b = a.create_qp(Transport.RC), b.create_qp(Transport.RC)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 20)
        arrived = []
        b.watch_writes(dst.range, arrived.append)
        for i in range(50):
            post_write(qp_a, src.range.base, dst.range.base + 64 * i, 32,
                       payload=i, signaled=False)
        sim.run()
        assert len(arrived) == 50
        assert fabric.packets_lost == 0


class TestUnreliableLoss:
    def test_uc_writes_are_lost_silently(self):
        sim, fabric = lossy_fabric(loss=0.4)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        qp_a, qp_b = a.create_qp(Transport.UC), b.create_qp(Transport.UC)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 20)
        arrived = []
        b.watch_writes(dst.range, arrived.append)
        completions = [
            post_write(qp_a, src.range.base, dst.range.base + 64 * i, 32)
            for i in range(100)
        ]
        sim.run()
        # The sender always completes; the receiver misses the lost ones.
        assert all(wr.done for wr in completions)
        assert 30 <= len(arrived) <= 90
        assert fabric.packets_lost == 100 - len(arrived)

    def test_ud_sends_are_lost(self):
        sim, fabric = lossy_fabric(loss=0.4)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        ud_a, ud_b = a.create_qp(Transport.UD, max_recv_wr=256), b.create_qp(
            Transport.UD, max_recv_wr=256
        )
        buf = b.register_memory(64 * 256, huge_pages=False)
        for i in range(200):
            post_recv(ud_b, buf.range.base + (i % 256) * 64, 64)
        for i in range(100):
            post_send(ud_a, 32, payload=i, dest=ud_b.address_handle(), signaled=False)
        sim.run()
        delivered = ud_b.recv_cq.poll(max_entries=200)
        assert 30 <= len(delivered) <= 90
        assert fabric.packets_lost > 0

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim, fabric = lossy_fabric(loss=0.4, seed=seed)
            a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
            qp_a, qp_b = a.create_qp(Transport.UC), b.create_qp(Transport.UC)
            qp_a.connect(qp_b)
            src = a.register_memory(4096)
            dst = b.register_memory(1 << 20)
            for i in range(60):
                post_write(qp_a, src.range.base, dst.range.base + 64 * i, 32,
                           signaled=False)
            sim.run()
            return fabric.packets_lost

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) != run(9)

    def test_zero_loss_by_default(self):
        sim = Simulator()
        fabric = Fabric(sim)
        assert not fabric.drops_packet(reliable=False)
