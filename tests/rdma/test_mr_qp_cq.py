"""Tests for memory regions, queue pairs, and completion queues."""

import pytest

from repro.memsys import MemoryRange
from repro.rdma import (
    Access,
    Completion,
    CompletionQueue,
    MrTable,
    Opcode,
    ProtectionError,
    QpError,
    QpState,
    Transport,
)
from repro.rdma.qp import RecvWqe


class TestMrTable:
    def test_register_and_check(self):
        table = MrTable()
        region = table.register(MemoryRange(0x1000, 4096), Access.all_remote())
        assert table.check(0x1000, 64, Access.REMOTE_WRITE) is region

    def test_check_rejects_out_of_range(self):
        table = MrTable()
        table.register(MemoryRange(0x1000, 4096), Access.all_remote())
        with pytest.raises(ProtectionError):
            table.check(0x0, 64, Access.REMOTE_WRITE)
        with pytest.raises(ProtectionError):
            table.check(0x1000, 8192, Access.REMOTE_WRITE)

    def test_check_rejects_missing_permission(self):
        table = MrTable()
        table.register(MemoryRange(0x1000, 4096), Access.REMOTE_READ)
        table.check(0x1000, 8, Access.REMOTE_READ)
        with pytest.raises(ProtectionError):
            table.check(0x1000, 8, Access.REMOTE_WRITE)

    def test_rkey_lookup(self):
        table = MrTable()
        region = table.register(MemoryRange(0, 64), Access.REMOTE_READ)
        assert table.by_rkey(region.rkey) is region
        with pytest.raises(ProtectionError):
            table.by_rkey(999999)

    def test_deregister(self):
        table = MrTable()
        region = table.register(MemoryRange(0, 64), Access.all_remote())
        table.deregister(region)
        with pytest.raises(ProtectionError):
            table.check(0, 8, Access.REMOTE_READ)
        with pytest.raises(ProtectionError):
            table.deregister(region)

    def test_keys_are_unique(self):
        table = MrTable()
        a = table.register(MemoryRange(0, 64), Access.all_remote())
        b = table.register(MemoryRange(64, 64), Access.all_remote())
        assert a.rkey != b.rkey
        assert a.lkey != b.lkey


class TestQueuePair:
    def test_rc_requires_connect(self, nodes):
        a, _b = nodes
        qp = a.create_qp(Transport.RC)
        assert qp.state is QpState.INIT
        assert not qp.is_ready

    def test_connect_transitions_both_to_rts(self, rc_pair):
        qp_a, qp_b = rc_pair
        assert qp_a.state is QpState.RTS
        assert qp_b.state is QpState.RTS
        assert qp_a.peer is qp_b

    def test_ud_is_ready_immediately(self, nodes):
        a, _ = nodes
        qp = a.create_qp(Transport.UD)
        assert qp.is_ready

    def test_ud_cannot_connect(self, nodes):
        a, b = nodes
        with pytest.raises(QpError):
            a.create_qp(Transport.UD).connect(b.create_qp(Transport.UD))

    def test_transport_mismatch_rejected(self, nodes):
        a, b = nodes
        with pytest.raises(QpError):
            a.create_qp(Transport.RC).connect(b.create_qp(Transport.UC))

    def test_double_connect_rejected(self, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        with pytest.raises(QpError):
            qp_a.connect(b.create_qp(Transport.RC))

    def test_self_node_connect_rejected(self, nodes):
        a, _ = nodes
        with pytest.raises(QpError):
            a.create_qp(Transport.RC).connect(a.create_qp(Transport.RC))

    def test_address_handle_only_for_ud(self, nodes):
        a, _ = nodes
        ud = a.create_qp(Transport.UD)
        handle = ud.address_handle()
        assert handle.qp_num == ud.qp_num
        with pytest.raises(QpError):
            a.create_qp(Transport.RC).address_handle()

    def test_recv_queue_capacity(self, nodes):
        a, _ = nodes
        qp = a.create_qp(Transport.UD, max_recv_wr=2)
        qp.post_recv_wqe(RecvWqe(1, 0, 64))
        qp.post_recv_wqe(RecvWqe(2, 64, 64))
        with pytest.raises(QpError):
            qp.post_recv_wqe(RecvWqe(3, 128, 64))

    def test_consume_recv_fifo(self, nodes):
        a, _ = nodes
        qp = a.create_qp(Transport.UD)
        qp.post_recv_wqe(RecvWqe(1, 0, 64))
        qp.post_recv_wqe(RecvWqe(2, 64, 64))
        assert qp.consume_recv_wqe().wr_id == 1
        assert qp.consume_recv_wqe().wr_id == 2
        assert qp.consume_recv_wqe() is None


class TestCompletionQueue:
    def test_poll_empty(self, sim):
        assert CompletionQueue(sim).poll() == []

    def test_push_and_poll_order(self, sim):
        cq = CompletionQueue(sim)
        for i in range(3):
            cq.push(Completion(wr_id=i, opcode=Opcode.SEND, qp_num=1))
        assert [c.wr_id for c in cq.poll(2)] == [0, 1]
        assert [c.wr_id for c in cq.poll()] == [2]
        assert cq.pushed == 3
        assert cq.polled == 3

    def test_get_event_blocks_until_push(self, sim):
        cq = CompletionQueue(sim)
        seen = []

        def waiter(sim):
            completion = yield cq.get_event()
            seen.append(completion.wr_id)

        def pusher(sim):
            yield sim.timeout(5)
            cq.push(Completion(wr_id=77, opcode=Opcode.SEND, qp_num=1))

        sim.process(waiter(sim))
        sim.process(pusher(sim))
        sim.run()
        assert seen == [77]
