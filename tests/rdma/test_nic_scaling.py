"""Integration tests: the NIC connection cache produces the paper's
outbound-scaling behaviour (Section 2.3), and inbound stays flat."""


from repro.rdma import Fabric, NicParams, Node, Transport, post_write
from repro.sim import Simulator


def outbound_round_trip_stats(n_clients: int, rounds: int = 5):
    """One server writes to n_clients in round-robin; return NIC stats."""
    sim = Simulator()
    fabric = Fabric(sim)
    params = NicParams(conn_cache_entries=8, conn_cache_policy="lru")
    server = Node(sim, "server", fabric, nic_params=params)
    src = server.register_memory(1 << 20)
    targets = []
    for i in range(n_clients):
        client = Node(sim, f"c{i}", fabric, nic_params=params)
        dst = client.register_memory(4096)
        qp_s = server.create_qp(Transport.RC)
        qp_c = client.create_qp(Transport.RC)
        qp_s.connect(qp_c)
        targets.append((qp_s, dst.range.base))

    def driver(sim):
        for _ in range(rounds):
            for qp, addr in targets:
                wr = post_write(qp, src.range.base, addr, 32)
                yield wr.completion

    sim.process(driver(sim))
    sim.run()
    return server.nic.stats, sim.now


class TestConnectionCacheScaling:
    def test_few_connections_stay_cached(self):
        stats, _ = outbound_round_trip_stats(n_clients=4)
        assert stats.conn_misses == 4  # cold misses only
        assert stats.conn_hits == 16

    def test_many_connections_thrash(self):
        stats, _ = outbound_round_trip_stats(n_clients=16)
        # Cyclic access over 16 keys with an 8-entry LRU: every access misses.
        assert stats.conn_hits == 0
        assert stats.conn_misses == 16 * 5

    def test_thrashing_slows_outbound(self):
        _, t_small = outbound_round_trip_stats(n_clients=4, rounds=10)
        _, t_large = outbound_round_trip_stats(n_clients=16, rounds=10)
        per_op_small = t_small / (4 * 10)
        per_op_large = t_large / (16 * 10)
        assert per_op_large > per_op_small * 1.2

    def test_miss_amplifies_pcie_reads(self):
        sim = Simulator()
        fabric = Fabric(sim)
        params = NicParams(conn_cache_entries=2, conn_cache_policy="lru")
        server = Node(sim, "server", fabric, nic_params=params)
        src = server.register_memory(1 << 20)
        qps = []
        for i in range(4):
            client = Node(sim, f"c{i}", fabric)
            dst = client.register_memory(4096)
            qp_s = server.create_qp(Transport.RC)
            qp_c = client.create_qp(Transport.RC)
            qp_s.connect(qp_c)
            qps.append((qp_s, dst.range.base))

        def driver(sim):
            for _ in range(3):
                for qp, addr in qps:
                    wr = post_write(qp, src.range.base, addr, 32)
                    yield wr.completion

        sim.process(driver(sim))
        sim.run()
        ops = 12
        # Every op misses the 2-entry QPC cache (cyclic over 4 keys):
        # payload line + QPC refetch per op, plus the four cold WQE-cache
        # misses (the WQE cache default easily holds 4 connections).
        expected = ops * (1 + params.conn_miss_fetch_lines) + 4 * params.wqe_miss_fetch_lines
        assert server.counters.pcie_rd_cur == expected


class TestInboundFlat:
    def test_inbound_never_touches_conn_cache(self):
        sim = Simulator()
        fabric = Fabric(sim)
        params = NicParams(conn_cache_entries=2, conn_cache_policy="lru")
        server = Node(sim, "server", fabric, nic_params=params)
        pool = server.register_memory(1 << 20)
        clients = []
        for i in range(8):
            client = Node(sim, f"c{i}", fabric)
            src = client.register_memory(4096)
            qp_c = client.create_qp(Transport.RC)
            qp_s = server.create_qp(Transport.RC)
            qp_c.connect(qp_s)
            clients.append((client, qp_c, src.range.base))

        def client_proc(sim, qp, src_addr, slot):
            for _n in range(5):
                wr = post_write(qp, src_addr, pool.range.base + slot * 64, 32)
                yield wr.completion

        for i, (_client, qp, src_addr) in enumerate(clients):
            sim.process(client_proc(sim, qp, src_addr, i))
        sim.run()
        assert server.nic.stats.conn_misses == 0
        assert server.nic.stats.rx_ops == 40

    def test_ud_send_has_no_connection_key(self):
        sim = Simulator()
        fabric = Fabric(sim)
        params = NicParams(conn_cache_entries=1, conn_cache_policy="lru")
        sender = Node(sim, "s", fabric, nic_params=params)
        from repro.rdma import post_recv, post_send

        receivers = []
        for i in range(6):
            node = Node(sim, f"r{i}", fabric)
            qp = node.create_qp(Transport.UD)
            buf = node.register_memory(8192)
            for _ in range(4):
                post_recv(qp, buf.range.base, 4096)
            receivers.append(qp)
        ud = sender.create_qp(Transport.UD)

        def driver(sim):
            for _ in range(3):
                for qp in receivers:
                    wr = post_send(ud, 32, dest=qp.address_handle())
                    yield wr.completion

        sim.process(driver(sim))
        sim.run()
        assert sender.nic.stats.conn_misses == 0
        assert sender.nic.stats.conn_hits == 0
