"""Verb-level tracing through the fabric's tracer."""

from repro.rdma import Fabric, Node, Transport, post_read, post_send, post_recv, post_write
from repro.sim import Simulator, Tracer


def build(traced=True):
    sim = Simulator()
    fabric = Fabric(sim, tracer=Tracer(enabled=traced))
    a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
    qp_a, qp_b = a.create_qp(Transport.RC), b.create_qp(Transport.RC)
    qp_a.connect(qp_b)
    src = a.register_memory(4096)
    dst = b.register_memory(4096)
    return sim, fabric, a, b, qp_a, qp_b, src, dst


class TestVerbTracing:
    def test_writes_and_reads_are_traced(self):
        sim, fabric, a, b, qp_a, qp_b, src, dst = build()
        post_write(qp_a, src.range.base, dst.range.base, 32)
        post_read(qp_a, src.range.base, dst.range.base, 8)
        sim.run()
        events = [r.event for r in fabric.tracer.records]
        assert events == ["write", "read"]
        detail = fabric.tracer.records[0].detail
        assert detail["to"] == "b"
        assert detail["bytes"] == 32

    def test_write_imm_traced_distinctly(self):
        sim, fabric, a, b, qp_a, qp_b, src, dst = build()
        post_recv(qp_b, dst.range.base, 64)
        post_write(qp_a, src.range.base, dst.range.base, 32, imm_data=5)
        sim.run()
        assert [r.event for r in fabric.tracer.records] == ["write_imm"]

    def test_sends_traced(self):
        sim = Simulator()
        fabric = Fabric(sim, tracer=Tracer(enabled=True))
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        ud_a, ud_b = a.create_qp(Transport.UD), b.create_qp(Transport.UD)
        buf = b.register_memory(4096)
        post_recv(ud_b, buf.range.base, 4096)
        post_send(ud_a, 64, dest=ud_b.address_handle())
        sim.run()
        assert [r.event for r in fabric.tracer.records] == ["send"]

    def test_disabled_tracer_records_nothing(self):
        sim, fabric, a, b, qp_a, qp_b, src, dst = build(traced=False)
        post_write(qp_a, src.range.base, dst.range.base, 32)
        sim.run()
        assert fabric.tracer.records == []

    def test_timestamps_are_post_time(self):
        sim, fabric, a, b, qp_a, qp_b, src, dst = build()

        def driver(sim):
            yield sim.timeout(500)
            post_write(qp_a, src.range.base, dst.range.base, 32)

        sim.process(driver(sim))
        sim.run()
        assert fabric.tracer.records[0].time_ns == 500
