"""Tests asserting the paper's Table 1 capability matrix."""

import pytest

from repro.rdma import NicParams, Opcode, Transport, max_message_size, supports

KIB = 1024
GIB = 1024**3


class TestTable1:
    """Verb support per transport, exactly as the paper's Table 1."""

    @pytest.mark.parametrize("opcode", list(Opcode))
    def test_rc_supports_everything(self, opcode):
        assert supports(Transport.RC, opcode)

    def test_uc_supports_send_recv_and_write(self):
        assert supports(Transport.UC, Opcode.SEND)
        assert supports(Transport.UC, Opcode.RECV)
        assert supports(Transport.UC, Opcode.WRITE)
        assert supports(Transport.UC, Opcode.WRITE_IMM)

    def test_uc_rejects_read_and_atomic(self):
        assert not supports(Transport.UC, Opcode.READ)
        assert not supports(Transport.UC, Opcode.ATOMIC)

    def test_ud_supports_only_send_recv(self):
        assert supports(Transport.UD, Opcode.SEND)
        assert supports(Transport.UD, Opcode.RECV)
        for opcode in (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.READ, Opcode.ATOMIC):
            assert not supports(Transport.UD, opcode)

    def test_mtu_values(self):
        assert max_message_size(Transport.RC) == 2 * GIB
        assert max_message_size(Transport.UC) == 2 * GIB
        assert max_message_size(Transport.UD) == 4 * KIB

    def test_connectedness(self):
        assert Transport.RC.is_connected
        assert Transport.UC.is_connected
        assert not Transport.UD.is_connected

    def test_reliability(self):
        assert Transport.RC.is_reliable
        assert not Transport.UC.is_reliable
        assert not Transport.UD.is_reliable


class TestNicParams:
    def test_defaults_are_positive(self):
        params = NicParams()
        assert params.tx_base_ns > 0
        assert params.conn_cache_entries >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NicParams(tx_base_ns=-1)

    def test_zero_cache_rejected(self):
        with pytest.raises(ValueError):
            NicParams(conn_cache_entries=0)
