"""Behavioural tests for the verb layer."""

import pytest

from repro.rdma import (
    Access,
    ProtectionError,
    Transport,
    VerbError,
    post_cas,
    post_fetch_add,
    post_read,
    post_recv,
    post_send,
    post_write,
)


def run(sim):
    sim.run()


class TestWrite:
    def test_write_delivers_payload(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32, payload={"op": "stat"})
        run(sim)
        assert wr.done
        assert b.load(dst.range.base) == {"op": "stat"}

    def test_write_completion_takes_time(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32)
        run(sim)
        # MMIO + tx + wire + rx + ACK: at least two wire flights.
        assert wr.completion.value.timestamp_ns >= 2 * a.fabric.params.latency_ns

    def test_uc_write_completes_without_ack_flight(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_rc, _ = rc_pair
        qp_a = a.create_qp(Transport.UC)
        qp_b = b.create_qp(Transport.UC)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        uc_wr = post_write(qp_a, src.range.base, dst.range.base, 32)
        run(sim)
        uc_time = uc_wr.completion.value.timestamp_ns
        rc_wr = post_write(qp_rc, src.range.base, dst.range.base + 64, 32)
        start = sim.now
        run(sim)
        rc_time = rc_wr.completion.value.timestamp_ns - start
        # RC completion waits out the ACK's return flight; UC doesn't.
        assert rc_time >= uc_time + a.fabric.params.latency_ns // 2

    def test_write_to_unregistered_memory_faults(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        with pytest.raises(ProtectionError):
            post_write(qp_a, src.range.base, 0xDEAD0000, 32)

    def test_write_respects_region_permissions(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        readonly = b.register_memory(4096, access=Access.REMOTE_READ)
        with pytest.raises(ProtectionError):
            post_write(qp_a, src.range.base, readonly.range.base, 32)

    def test_ud_write_rejected(self, sim, nodes):
        a, b = nodes
        qp = a.create_qp(Transport.UD)
        with pytest.raises(VerbError):
            post_write(qp, 0, 0, 32)

    def test_unconnected_qp_rejected(self, sim, nodes):
        a, b = nodes
        qp = a.create_qp(Transport.RC)
        with pytest.raises(VerbError):
            post_write(qp, 0, 0, 32)

    def test_watcher_notified(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        events = []
        b.watch_writes(dst.range, events.append)
        post_write(qp_a, src.range.base, dst.range.base + 128, 32, payload="msg")
        run(sim)
        assert len(events) == 1
        assert events[0].addr == dst.range.base + 128
        assert events[0].payload == "msg"

    def test_write_imm_generates_recv_completion(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, qp_b = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        post_recv(qp_b, dst.range.base + 2048, 64)
        post_write(qp_a, src.range.base, dst.range.base, 32, imm_data=42)
        run(sim)
        completions = qp_b.recv_cq.poll()
        assert len(completions) == 1
        assert completions[0].imm_data == 42

    def test_write_imm_without_recv_counts_drop(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, qp_b = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        post_write(qp_a, src.range.base, dst.range.base, 32, imm_data=1)
        run(sim)
        assert qp_b.rnr_drops == 1

    def test_unsignaled_write_skips_cq(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        wr = post_write(qp_a, src.range.base, dst.range.base, 32, signaled=False)
        run(sim)
        assert wr.done
        assert qp_a.send_cq.poll() == []


class TestSendRecv:
    def _ud_pair(self, nodes):
        a, b = nodes
        qp_a = a.create_qp(Transport.UD)
        qp_b = b.create_qp(Transport.UD)
        return a, b, qp_a, qp_b

    def test_ud_send_delivers_to_recv_buffer(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        buf = b.register_memory(4096, access=Access.all_remote())
        post_recv(qp_b, buf.range.base, 4096)
        post_send(qp_a, 64, payload="hello", dest=qp_b.address_handle())
        run(sim)
        completions = qp_b.recv_cq.poll()
        assert len(completions) == 1
        assert completions[0].payload == "hello"
        assert b.load(buf.range.base) == "hello"

    def test_ud_send_requires_dest(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        with pytest.raises(VerbError):
            post_send(qp_a, 64)

    def test_ud_send_above_mtu_rejected(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        with pytest.raises(VerbError):
            post_send(qp_a, 4097, dest=qp_b.address_handle())

    def test_rc_send_within_mtu(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, qp_b = rc_pair
        buf = b.register_memory(1 << 20)
        post_recv(qp_b, buf.range.base, 1 << 20)
        wr = post_send(qp_a, 64 * 1024, payload=b"x")
        run(sim)
        assert wr.done
        assert qp_b.recv_cq.poll()[0].byte_len == 64 * 1024

    def test_send_without_recv_is_dropped(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        wr = post_send(qp_a, 64, dest=qp_b.address_handle())
        run(sim)
        assert wr.done  # sender never learns
        assert qp_b.rnr_drops == 1
        assert qp_b.recv_cq.poll() == []

    def test_send_overflowing_recv_buffer_raises(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        buf = b.register_memory(4096)
        post_recv(qp_b, buf.range.base, 32)
        post_send(qp_a, 64, dest=qp_b.address_handle())
        with pytest.raises(VerbError):
            run(sim)

    def test_rc_send_to_explicit_dest_rejected(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        ud = b.create_qp(Transport.UD)
        with pytest.raises(VerbError):
            post_send(qp_a, 64, dest=ud.address_handle())

    def test_recv_requires_local_write_region(self, sim, nodes):
        a, b, qp_a, qp_b = self._ud_pair(nodes)
        with pytest.raises(ProtectionError):
            post_recv(qp_b, 0xDEAD0000, 64)


class TestRead:
    def test_read_returns_remote_object(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        local = a.register_memory(4096)
        remote = b.register_memory(4096)
        b.store(remote.range.base + 8, ("version", 7))
        wr = post_read(qp_a, local.range.base, remote.range.base + 8, 8)
        run(sim)
        assert wr.completion.value.payload == ("version", 7)
        assert a.load(local.range.base) == ("version", 7)

    def test_uc_read_rejected(self, sim, nodes):
        a, b = nodes
        qp_a = a.create_qp(Transport.UC)
        qp_b = b.create_qp(Transport.UC)
        qp_a.connect(qp_b)
        with pytest.raises(VerbError):
            post_read(qp_a, 0, 0, 8)

    def test_read_requires_remote_read_permission(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        local = a.register_memory(4096)
        writeonly = b.register_memory(4096, access=Access.REMOTE_WRITE)
        with pytest.raises(ProtectionError):
            post_read(qp_a, local.range.base, writeonly.range.base, 8)


class TestAtomics:
    def _setup(self, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        local = a.register_memory(4096)
        remote = b.register_memory(4096)
        return a, b, qp_a, local.range.base, remote.range.base

    def test_cas_success(self, sim, nodes, rc_pair):
        a, b, qp, local, remote = self._setup(nodes, rc_pair)
        b.store(remote, 0)
        wr = post_cas(qp, local, remote, compare=0, swap=1)
        run(sim)
        assert wr.completion.value.payload == 0  # old value
        assert b.load(remote) == 1

    def test_cas_failure_leaves_word(self, sim, nodes, rc_pair):
        a, b, qp, local, remote = self._setup(nodes, rc_pair)
        b.store(remote, 5)
        wr = post_cas(qp, local, remote, compare=0, swap=1)
        run(sim)
        assert wr.completion.value.payload == 5
        assert b.load(remote) == 5

    def test_fetch_add(self, sim, nodes, rc_pair):
        a, b, qp, local, remote = self._setup(nodes, rc_pair)
        b.store(remote, 10)
        wr = post_fetch_add(qp, local, remote, delta=3)
        run(sim)
        assert wr.completion.value.payload == 10
        assert b.load(remote) == 13

    def test_atomics_serialize(self, sim, nodes, rc_pair):
        a, b, qp, local, remote = self._setup(nodes, rc_pair)
        for _ in range(10):
            post_fetch_add(qp, local, remote, delta=1)
        run(sim)
        assert b.load(remote) == 10

    def test_atomic_requires_permission(self, sim, nodes, rc_pair):
        a, b, qp, local, _ = self._setup(nodes, rc_pair)
        readonly = b.register_memory(64, access=Access.REMOTE_READ)
        with pytest.raises(ProtectionError):
            post_cas(qp, local, readonly.range.base, 0, 1)


class TestCounters:
    def test_write_emits_payload_dma_read_and_itom(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        post_write(qp_a, src.range.base, dst.range.base, 64)
        run(sim)
        # One payload line read + the cold QPC and WQE cache refetches.
        fetch = a.nic.params.conn_miss_fetch_lines + a.nic.params.wqe_miss_fetch_lines
        assert a.counters.pcie_rd_cur == 1 + fetch
        assert b.counters.itom == 1  # full-line DMA write at receiver
        assert b.counters.pcie_itom == 1  # cold line -> write allocate

    def test_partial_write_counts_rfo(self, sim, nodes, rc_pair):
        a, b = nodes
        qp_a, _ = rc_pair
        src = a.register_memory(4096)
        dst = b.register_memory(4096)
        post_write(qp_a, src.range.base, dst.range.base, 32)
        run(sim)
        assert b.counters.rfo == 1
        assert b.counters.itom == 0
