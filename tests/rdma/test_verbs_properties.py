"""Property-based tests of the verb layer's delivery guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import Fabric, Node, Transport, post_recv, post_send, post_write
from repro.sim import Simulator


class TestRcDelivery:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),  # slot
                st.integers(min_value=1, max_value=120),  # size
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_rc_write_delivered_exactly_once(self, writes):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        qp_a, qp_b = a.create_qp(Transport.RC), b.create_qp(Transport.RC)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 20)
        arrived = []
        b.watch_writes(dst.range, arrived.append)
        for tag, (slot, size) in enumerate(writes):
            post_write(qp_a, src.range.base, dst.range.base + 256 * slot, size,
                       payload=tag, signaled=False)
        sim.run()
        assert sorted(event.payload for event in arrived) == list(range(len(writes)))

    @given(
        writes=st.lists(st.integers(min_value=1, max_value=100), min_size=2, max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_same_qp_writes_arrive_in_post_order(self, writes):
        """RC guarantees ordering within a connection; our single-pipeline
        NIC and FIFO fabric preserve it."""
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        qp_a, qp_b = a.create_qp(Transport.RC), b.create_qp(Transport.RC)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 20)
        arrival_order = []
        b.watch_writes(dst.range, lambda e: arrival_order.append(e.payload))
        for tag, size in enumerate(writes):
            post_write(qp_a, src.range.base, dst.range.base + 128 * tag, size,
                       payload=tag, signaled=False)
        sim.run()
        assert arrival_order == sorted(arrival_order)

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_ud_sends_with_enough_recvs_all_arrive(self, n):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        ud_a = a.create_qp(Transport.UD, max_recv_wr=64)
        ud_b = b.create_qp(Transport.UD, max_recv_wr=64)
        buf = b.register_memory(64 * 64, huge_pages=False)
        for i in range(max(n, 1)):
            post_recv(ud_b, buf.range.base + (i % 64) * 64, 64)
        for tag in range(n):
            post_send(ud_a, 32, payload=tag, dest=ud_b.address_handle(),
                      signaled=False)
        sim.run()
        received = [c.payload for c in ud_b.recv_cq.poll(max_entries=n + 1)]
        assert sorted(received) == list(range(n))
