"""ReplicaGroup unit semantics, driven directly through ``dispatch``
(no backend): the commit path's dedup/append/ship/gate steps, epoch
fencing, asymmetric partitions, and the promotion-time replay check."""

import pytest

from repro.core.interface import NO_RESPONSE
from repro.core.protocol import ProtocolError
from repro.replica.group import HEARTBEAT_RPC, OP_RPC, ReplicaGroup
from repro.replica.protocol import ReplicaRole
from repro.replica.statemachine import ReplicatedStateMachine


class _Req:
    """The request shape both backends hand to a server handler."""

    def __init__(self, rpc_type, payload, client_id=1, req_id=1):
        self.rpc_type = rpc_type
        self.payload = payload
        self.client_id = client_id
        self.req_id = req_id


def _group(names=("r0", "r1")):
    return ReplicaGroup(names, ReplicatedStateMachine)


def _op(client_id=1, req_id=1, key="k", value=1):
    return _Req(OP_RPC, {"verb": "put", "key": key, "value": value},
                client_id=client_id, req_id=req_id)


class TestCommitPath:
    def test_commit_ships_to_the_backup(self):
        group = _group()
        result = group.dispatch("r0", _op())
        assert result == {"ok": True}
        assert group.stats.commits == 1
        r0, r1 = group.replicas["r0"], group.replicas["r1"]
        assert (len(r0.log.entries), r0.log.durable) == (1, 1)
        assert (len(r1.log.entries), r1.log.durable) == (1, 1)
        assert r0.machine.digest() == r1.machine.digest()

    def test_repost_is_served_from_the_result_cache(self):
        group = _group()
        first = group.dispatch("r0", _op(req_id=9, value=3))
        applied = group.replicas["r0"].applied
        again = group.dispatch("r0", _op(req_id=9, value=3))
        assert again == first
        assert group.stats.duplicates_served == 1
        assert group.replicas["r0"].applied == applied  # not re-executed

    def test_backup_and_dead_replicas_answer_with_silence(self):
        group = _group()
        assert group.dispatch("r1", _op()) is NO_RESPONSE
        assert group.stats.redirected == 1
        group.fail_stop("r1")
        assert group.dispatch("r1", _op()) is NO_RESPONSE
        assert group.stats.dropped_dead == 1

    def test_sole_survivor_commits_without_acks(self):
        group = _group()
        group.fail_stop("r1")
        assert group.dispatch("r0", _op()) == {"ok": True}
        assert group.stats.commits == 1

    def test_commit_watchers_fire_per_commit(self):
        group = _group()
        seen = []
        group.commit_watchers.append(
            lambda name, epoch, cid, rid: seen.append((name, epoch, cid, rid))
        )
        group.dispatch("r0", _op(client_id=5, req_id=2))
        assert seen == [("r0", 1, 5, 2)]


class TestAckGate:
    def test_partitioned_primary_aborts_and_goes_silent(self):
        group = _group()
        group.partition("r0", "r1")
        assert group.dispatch("r0", _op()) is NO_RESPONSE
        assert group.stats.blocked_ships == 1
        assert group.stats.aborted_appends == 1
        assert group.stats.commits == 0
        # The append was withdrawn: the log holds nothing.
        assert group.replicas["r0"].log.entries == []

    def test_heal_restores_the_commit_path(self):
        group = _group()
        group.partition("r0", "r1")
        group.dispatch("r0", _op(req_id=1))
        group.heal("r0", "r1")
        assert group.dispatch("r0", _op(req_id=2)) == {"ok": True}

    def test_fenced_primary_cannot_commit(self):
        """A deposed primary whose backup moved to a fresher view gathers
        zero acks — the fence is what makes dual-primary impossible."""
        group = _group()
        group.replicas["r1"].epoch = 2  # backup saw view 2
        assert group.dispatch("r0", _op()) is NO_RESPONSE
        assert group.stats.fenced_ships == 1
        assert group.stats.aborted_appends == 1

    def test_buggy_knobs_let_the_stale_primary_commit(self):
        """The --buggy model-check variant: with fencing and the ack
        gate off, the deposed primary commits at its stale epoch."""
        group = _group()
        group.fencing_enabled = False
        group.acks_required = False
        group.replicas["r1"].epoch = 2
        assert group.dispatch("r0", _op()) == {"ok": True}
        assert group.stats.commits == 1  # the violation the guards prevent


class TestHeartbeats:
    def test_heartbeat_reports_role_and_epoch(self):
        group = _group()
        reply = group.dispatch(
            "r0", _Req(HEARTBEAT_RPC, {"origin": "gfd"})
        )
        assert reply == {"role": "primary", "epoch": 1, "log_len": 0}

    def test_asymmetric_partition_cuts_only_the_response_path(self):
        """Blocking r0 -> gfd silences r0's heartbeat *answers* while r0
        itself still ships to r1 — A sees B, B doesn't see A."""
        group = _group()
        group.partition("r0", "gfd")
        hb = _Req(HEARTBEAT_RPC, {"origin": "gfd"})
        assert group.dispatch("r0", hb) is NO_RESPONSE
        # The op path r0 -> r1 is untouched: commits still flow.
        assert group.dispatch("r0", _op()) == {"ok": True}


class TestPromotion:
    def _promoted(self):
        group = _group()
        group.dispatch("r0", _op(req_id=1, value=1))
        group.dispatch("r0", _op(req_id=2, value=2))
        group.fail_stop("r0")
        group.promote("r1", 2)
        return group

    def test_promotion_takes_over_at_the_new_epoch(self):
        group = self._promoted()
        r1 = group.replicas["r1"]
        assert r1.role is ReplicaRole.PRIMARY
        assert r1.epoch == 2
        assert group.stats.promotions == 1
        # The new primary serves committed state: dedup still answers.
        assert group.dispatch("r1", _op(req_id=2, value=2)) == {"ok": True}
        assert group.stats.duplicates_served == 1

    def test_promotion_with_stale_epoch_rejected(self):
        group = _group()
        with pytest.raises(ProtocolError, match="stale epoch"):
            group.promote("r1", 1)

    def test_promotion_of_dead_replica_rejected(self):
        group = _group()
        group.fail_stop("r1")
        with pytest.raises(ProtocolError, match="dead replica"):
            group.promote("r1", 2)

    def test_replay_divergence_fails_the_promotion(self):
        group = _group()
        group.dispatch("r0", _op())
        # Corrupt the backup's live state behind the log's back: the
        # promotion-time replay assertion must catch it.
        group.replicas["r1"].machine.kv.data["k"] = "tampered"
        with pytest.raises(ProtocolError, match="replay divergence"):
            group.promote("r1", 2)

    def test_advance_epoch_keeps_the_primary(self):
        group = _group(("r0", "r1", "r2"))
        group.fail_stop("r2")
        group.advance_epoch("r0", 2)
        assert group.replicas["r0"].role is ReplicaRole.PRIMARY
        assert group.replicas["r0"].epoch == 2
        with pytest.raises(ProtocolError, match="stale"):
            group.advance_epoch("r0", 2)
