"""ReplicaLog invariants: the durable prefix, the one-pending-tail rule,
the append → ack/abort typestate, and the dedup result cache."""

import pytest

from repro.replica.log import (
    MISSING,
    LogEntry,
    ReplicaLog,
    ReplicaLogError,
)
from repro.replica.statemachine import ReplicatedStateMachine


def _entry(index, epoch=1, client_id=1, req_id=None, op=None):
    return LogEntry(
        index=index,
        epoch=epoch,
        client_id=client_id,
        req_id=req_id if req_id is not None else index,
        op=op or {"verb": "put", "key": f"k{index}", "value": index},
    )


class TestAppendCommit:
    def test_ack_extends_the_durable_prefix(self):
        log = ReplicaLog()
        pending = log.append(_entry(0))
        assert log.durable == 0  # staged, not durable
        pending.ack()
        assert log.durable == 1
        assert [e.index for e in log.entries] == [0]

    def test_abort_retracts_the_tail(self):
        log = ReplicaLog()
        log.append(_entry(0)).ack()
        pending = log.append(_entry(1))
        pending.abort()
        assert log.durable == 1
        assert [e.index for e in log.entries] == [0]
        # The slot is reusable: the next append takes index 1 again.
        log.append(_entry(1)).ack()
        assert log.durable == 2

    def test_append_while_pending_rejected(self):
        log = ReplicaLog()
        log.append(_entry(0))  # left unresolved
        with pytest.raises(ReplicaLogError, match="still pending"):
            log.append(_entry(1))

    def test_non_contiguous_index_rejected(self):
        log = ReplicaLog()
        log.append(_entry(0)).ack()
        with pytest.raises(ReplicaLogError, match="expected 1"):
            log.append(_entry(5))

    def test_epoch_regression_rejected(self):
        log = ReplicaLog()
        log.append(_entry(0, epoch=3)).ack()
        with pytest.raises(ReplicaLogError, match="regressed"):
            log.append(_entry(1, epoch=2))

    def test_epoch_may_stay_or_advance(self):
        log = ReplicaLog()
        log.append(_entry(0, epoch=1)).ack()
        log.append(_entry(1, epoch=1)).ack()
        log.append(_entry(2, epoch=4)).ack()
        assert log.durable == 3

    def test_double_resolve_rejected(self):
        log = ReplicaLog()
        pending = log.append(_entry(0))
        pending.ack()
        with pytest.raises(ReplicaLogError, match="resolved twice"):
            pending.ack()
        with pytest.raises(ReplicaLogError, match="resolved twice"):
            pending.abort()


class TestResultCache:
    def test_missing_until_recorded(self):
        log = ReplicaLog()
        assert log.result_for(1, 1) is MISSING
        log.record_result(1, 1, {"ok": True})
        assert log.result_for(1, 1) == {"ok": True}

    def test_cached_none_is_not_missing(self):
        """A handler that legitimately returned None must still dedup."""
        log = ReplicaLog()
        log.record_result(2, 7, None)
        assert log.result_for(2, 7) is None
        assert log.result_for(2, 7) is not MISSING


class TestReplay:
    def test_replay_reproduces_the_live_digest(self):
        log = ReplicaLog()
        live = ReplicatedStateMachine()
        for i in range(6):
            op = ({"verb": "mknod", "path": f"/f{i}"} if i % 2
                  else {"verb": "put", "key": f"k{i}", "value": i})
            log.append(_entry(i, op=op)).ack()
            live.apply(op)
        assert log.replay(ReplicatedStateMachine()) == live.digest()

    def test_replay_covers_only_the_durable_prefix(self):
        log = ReplicaLog()
        live = ReplicatedStateMachine()
        op = {"verb": "put", "key": "k", "value": 1}
        log.append(_entry(0, op=op)).ack()
        live.apply(op)
        log.append(_entry(1, op={"verb": "put", "key": "k", "value": 2}))
        # The pending tail is not durable: replay ignores it.
        assert log.replay(ReplicatedStateMachine()) == live.digest()
