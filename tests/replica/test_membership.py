"""MembershipService: LFD report aggregation, epoch-numbered views, the
deterministic promotion rule, and the subscription lifecycle."""

import pytest

from repro.core.protocol import ProtocolError
from repro.replica.membership import MembershipService, View


def _service(names=("r0", "r1", "r2"), suspect_after=2):
    return MembershipService(names, suspect_after)


class TestReportAggregation:
    def test_initial_view(self):
        svc = _service()
        assert svc.view.epoch == 1
        assert svc.view.primary == "r0"
        assert svc.view.backups == ("r1", "r2")
        assert svc.view.is_alive("r2")

    def test_single_miss_only_suspects(self):
        svc = _service()
        svc.report("r0", alive=False)
        assert svc.view.epoch == 1
        assert svc.view.is_alive("r0")

    def test_consecutive_misses_declare_dead(self):
        svc = _service()
        svc.report("r0", alive=False)
        svc.report("r0", alive=False)
        assert svc.view.epoch == 2
        assert not svc.view.is_alive("r0")

    def test_hit_resets_the_miss_counter(self):
        svc = _service()
        svc.report("r0", alive=False)
        svc.report("r0", alive=True)
        svc.report("r0", alive=False)
        assert svc.view.epoch == 1  # never reached suspect_after in a row

    def test_reports_about_removed_replicas_ignored(self):
        svc = _service()
        svc.declare_dead("r2")
        epoch = svc.view.epoch
        svc.report("r2", alive=False)
        svc.report("r2", alive=False)
        assert svc.view.epoch == epoch  # a racing LFD cannot double-remove


class TestViewInstall:
    def test_primary_death_promotes_first_live_backup(self):
        svc = _service()
        svc.declare_dead("r0")
        assert svc.view == View(
            epoch=2, primary="r1", backups=("r2",),
            alive=frozenset({"r1", "r2"}),
        )
        assert svc.view_changes == 1

    def test_backup_death_keeps_the_primary(self):
        svc = _service()
        svc.declare_dead("r1")
        assert svc.view.primary == "r0"
        assert svc.view.backups == ("r2",)
        assert svc.view.epoch == 2

    def test_cascading_deaths_walk_the_promotion_order(self):
        svc = _service()
        svc.declare_dead("r0")
        svc.declare_dead("r1")
        assert svc.view.primary == "r2"
        assert svc.view.epoch == 3

    def test_last_replica_death_is_a_protocol_error(self):
        svc = _service(names=("r0",))
        with pytest.raises(ProtocolError, match="last replica"):
            svc.declare_dead("r0")

    def test_stale_view_install_rejected(self):
        svc = _service()
        svc.declare_dead("r2")  # now at epoch 2
        stale = View(epoch=2, primary="r0", backups=("r1",),
                     alive=frozenset({"r0", "r1"}))
        with pytest.raises(ProtocolError, match="stale view"):
            svc._install(stale, now=0)


class TestSubscriptions:
    def test_subscribers_see_every_install(self):
        svc = _service()
        seen = []
        sub = svc.subscribe(seen.append)
        svc.declare_dead("r0")
        svc.declare_dead("r1")
        assert [v.epoch for v in seen] == [2, 3]
        assert sub.delivered == 2
        sub.unsubscribe()

    def test_unsubscribe_stops_delivery(self):
        svc = _service()
        seen = []
        sub = svc.subscribe(seen.append)
        svc.declare_dead("r0")
        sub.unsubscribe()
        svc.declare_dead("r1")
        assert [v.epoch for v in seen] == [2]

    def test_unsubscribe_is_idempotent(self):
        svc = _service()
        sub = svc.subscribe(lambda view: None)
        sub.unsubscribe()
        sub.unsubscribe()  # second release is a no-op, not an error
        assert not sub.active
