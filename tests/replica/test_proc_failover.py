"""The replicated real-process deployment: primary fail-stop over real
sockets, with client reconnect + failover retargeting the promoted
backup's endpoint.  Timings are compressed to keep the test around a
second of wall clock; the full-size run is ``fig_failover --backend
proc``."""

import pytest

from repro.replica import ReplicaProcConfig, run_replica_proc


@pytest.fixture(scope="module")
def result():
    return run_replica_proc(ReplicaProcConfig(
        n_clients=2,
        ops_per_client=12,
        op_gap_s=0.005,
        hb_period_s=0.04,
        hb_timeout_s=0.02,
        reconnect_backoff_s=0.02,
        fail_primary_at_s=0.06,
        timeout_s=20.0,
    ))


def test_every_op_completes_exactly_once(result):
    assert result["completed"] == result["total_ops"]
    assert result["duplicate_executions"] == 0


def test_the_backup_was_promoted(result):
    assert result["view"]["primary"] == "r1"
    assert result["view"]["epoch"] == 2
    assert result["group"]["promotions"] == 1


def test_clients_rode_the_real_reconnect_path(result):
    per_client = result["per_client"].values()
    assert all(c["failovers"] >= 1 for c in per_client)
    assert all(c["reconnects"] >= 1 for c in per_client)


def test_recovery_is_bounded(result):
    # Generous bound: CI wall clocks are noisy, but recovery must beat
    # the run's own timeout by a wide margin.
    assert 0 < result["unavailable_ns"] < 5_000_000_000


def test_surviving_replicas_agree(result):
    assert result["replica_digests_agree"]


def test_healthy_baseline_never_changes_view():
    result = run_replica_proc(ReplicaProcConfig(
        n_clients=1,
        ops_per_client=6,
        op_gap_s=0.002,
        fail_primary_at_s=None,
        timeout_s=20.0,
    ))
    assert result["completed"] == result["total_ops"]
    assert result["view"]["changes"] == 0
    assert result["unavailable_ns"] == 0
