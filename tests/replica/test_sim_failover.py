"""The replicated sim deployment end-to-end: primary fail-stop with
bounded client failover, exactly-once visibility, partition and rack
fault plans, and byte-identical determinism (obs on or off)."""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.replica import ReplicaSimConfig, run_replica_sim

US = 1_000


def _config(**overrides):
    base = dict(
        n_clients=2,
        ops_per_client=24,
        fail_primary_at_ns=100 * US,
        horizon_ns=1_500 * US,
    )
    base.update(overrides)
    return ReplicaSimConfig(**base)


class TestPrimaryFailStop:
    @pytest.fixture(scope="class")
    def result(self):
        return run_replica_sim(_config())

    def test_every_op_completes_exactly_once(self, result):
        assert result["completed"] == result["total_ops"]
        assert result["duplicate_executions"] == 0

    def test_the_view_changed_once_and_promoted_the_backup(self, result):
        assert result["view"] == {"epoch": 2, "primary": "r1", "changes": 1}
        assert result["group"]["promotions"] == 1

    def test_clients_failed_over_via_the_watchdog_or_the_push(self, result):
        per_client = result["per_client"].values()
        assert all(c["failovers"] >= 1 for c in per_client)
        assert sum(c["timeouts"] for c in per_client) >= 1

    def test_recovery_is_bounded(self, result):
        assert 0 < result["unavailable_ns"] < 800 * US

    def test_surviving_replicas_agree(self, result):
        assert result["replica_digests_agree"]


class TestHealthyBaseline:
    def test_no_fault_no_view_change(self):
        result = run_replica_sim(_config(fail_primary_at_ns=None))
        assert result["completed"] == result["total_ops"]
        assert result["view"]["changes"] == 0
        assert result["unavailable_ns"] == 0
        assert result["per_client"][1]["failovers"] == 0


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        a = run_replica_sim(_config())
        b = run_replica_sim(_config())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_obs_does_not_perturb_the_run(self):
        bare = run_replica_sim(_config())
        observed = run_replica_sim(_config(obs_enabled=True))
        assert json.dumps(bare, sort_keys=True) == \
            json.dumps(observed, sort_keys=True)

    def test_the_seed_lands_in_the_summary(self):
        """The summary names its seed so a regression is replayable."""
        result = run_replica_sim(_config(seed=2))
        assert result["seed"] == 2
        assert result["completed"] == result["total_ops"]


class TestDeclarativePlans:
    def test_asymmetric_partition_forces_failover(self):
        """Cutting r0 -> r1 (ships) and r0 -> gfd (heartbeat answers)
        deposes a healthy r0: the ack gate keeps it from committing
        alone and the GFD promotes r1."""
        plan = FaultPlan.of([
            FaultSpec("partition", at_ns=100 * US, src="r0", dst="r1"),
            FaultSpec("partition", at_ns=100 * US, src="r0", dst="gfd"),
        ])
        result = run_replica_sim(
            _config(fail_primary_at_ns=None, horizon_ns=2_500 * US),
            plan=plan,
        )
        assert result["completed"] == result["total_ops"]
        assert result["duplicate_executions"] == 0
        assert result["view"]["primary"] == "r1"
        assert result["group"]["aborted_appends"] >= 1  # the gate held
        assert result["replica_digests_agree"]

    def test_rack_failure_promotes_the_survivor(self):
        plan = FaultPlan.of([
            FaultSpec("rack_failure", at_ns=100 * US,
                      group_targets=("r0", "r1")),
        ])
        result = run_replica_sim(
            _config(n_replicas=3, fail_primary_at_ns=None,
                    horizon_ns=2_500 * US),
            plan=plan,
        )
        assert result["completed"] == result["total_ops"]
        assert result["view"]["primary"] == "r2"
        assert result["duplicate_executions"] == 0

    def test_fault_schedule_is_reported(self):
        result = run_replica_sim(_config())
        kinds = [record["kind"] for record in result["fault_schedule"]]
        assert "server_fail_stop" in kinds
