"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestTimeout:
    def test_advances_time(self, sim):
        def proc(sim):
            yield sim.timeout(25)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 25

    def test_zero_delay_is_allowed(self, sim):
        def proc(sim):
            yield sim.timeout(0)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_fifo_at_same_instant(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(10)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "done"

    def test_process_waits_on_event(self, sim):
        gate = sim.event()

        def opener(sim):
            yield sim.timeout(50)
            gate.succeed("open")

        def waiter(sim):
            value = yield gate
            return (sim.now, value)

        w = sim.process(waiter(sim))
        sim.process(opener(sim))
        sim.run()
        assert w.value == (50, "open")

    def test_process_join(self, sim):
        def inner(sim):
            yield sim.timeout(30)
            return 3

        def outer(sim):
            result = yield sim.process(inner(sim))
            return result * 2

        p = sim.process(outer(sim))
        sim.run()
        assert p.value == 6

    def test_failed_event_raises_in_process(self, sim):
        gate = sim.event()

        def failer(sim):
            yield sim.timeout(5)
            gate.fail(ValueError("boom"))

        def waiter(sim):
            try:
                yield gate
            except ValueError as exc:
                return str(exc)

        w = sim.process(waiter(sim))
        sim.process(failer(sim))
        sim.run()
        assert w.value == "boom"

    def test_uncaught_process_exception_propagates(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("bug")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="bug"):
            sim.run()

    def test_interrupt_while_sleeping(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(1000)
            except Interrupt as exc:
                return ("interrupted", sim.now, exc.cause)

        def interrupter(sim, victim):
            yield sim.timeout(10)
            victim.interrupt("wakeup")

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == ("interrupted", 10, "wakeup")

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1)
            return "ok"

        p = sim.process(quick(sim))
        sim.run()
        p.interrupt()
        sim.run()
        assert p.value == "ok"

    def test_unhandled_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(1000)

        def interrupter(sim, victim):
            yield sim.timeout(10)
            victim.interrupt()

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.triggered
        assert not victim.ok

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)


class TestComposites:
    def test_any_of_first_wins(self, sim):
        def proc(sim):
            fast = sim.timeout(10, "fast")
            slow = sim.timeout(100, "slow")
            result = yield sim.any_of([fast, slow])
            return (sim.now, sorted(result.values()))

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (10, ["fast"])

    def test_all_of_waits_for_all(self, sim):
        def proc(sim):
            values = yield sim.all_of([sim.timeout(10, "a"), sim.timeout(30, "b")])
            return (sim.now, values)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (30, ["a", "b"])

    def test_empty_all_of_triggers_immediately(self, sim):
        def proc(sim):
            values = yield sim.all_of([])
            return values

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == []


class TestRun:
    def test_run_until_stops_early(self, sim):
        ticks = []

        def ticker(sim):
            while True:
                yield sim.timeout(10)
                ticks.append(sim.now)

        sim.process(ticker(sim))
        sim.run(until=35)
        assert ticks == [10, 20, 30]
        assert sim.now == 35

    def test_run_until_advances_idle_clock(self, sim):
        sim.run(until=1000)
        assert sim.now == 1000

    def test_resume_after_until(self, sim):
        ticks = []

        def ticker(sim):
            while True:
                yield sim.timeout(10)
                ticks.append(sim.now)

        sim.process(ticker(sim))
        sim.run(until=20)
        sim.run(until=50)
        assert ticks == [10, 20, 30, 40, 50]

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(5)
        assert sim.peek() == 5
