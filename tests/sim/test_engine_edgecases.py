"""Kernel edge cases locked down before (and preserved by) the fast path.

These tests pin the delivery semantics the rest of the repository depends
on: strict FIFO among same-instant events regardless of how they were
scheduled, interrupt delivery while parked on composite events,
``run(until=)`` boundary behavior, and re-entrancy rejection.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSameInstantFifo:
    def test_mixed_zero_timeouts_and_succeeds_deliver_in_creation_order(self, sim):
        """Zero-delay timeouts and manual succeed()s at one instant must
        interleave in scheduling order, not by mechanism."""
        order = []

        def proc(sim):
            yield sim.timeout(5)
            t1 = sim.timeout(0, "t1")
            e1 = sim.event()
            e1.succeed("e1")
            t2 = sim.timeout(0, "t2")
            e2 = sim.event()
            e2.succeed("e2")
            for event in (t1, e1, t2, e2):
                event.add_callback(lambda e: order.append(e.value))
            yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run()
        assert order == ["t1", "e1", "t2", "e2"]

    def test_succeed_chain_stays_fifo(self, sim):
        """Events succeeded from callbacks land behind already-posted ones."""
        order = []
        first, second, chained = sim.event(), sim.event(), sim.event()
        first.add_callback(lambda e: (order.append("first"), chained.succeed()))
        second.add_callback(lambda e: order.append("second"))
        chained.add_callback(lambda e: order.append("chained"))
        first.succeed()
        second.succeed()
        sim.run()
        assert order == ["first", "second", "chained"]

    def test_processes_started_together_resume_in_start_order(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(7)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestInterruptComposites:
    def test_interrupt_while_waiting_on_anyof(self, sim):
        def victim(sim):
            try:
                yield sim.any_of([sim.event(), sim.event()])
            except Interrupt as exc:
                return ("interrupted", exc.cause)
            return "not interrupted"

        process = sim.process(victim(sim))

        def interrupter(sim):
            yield sim.timeout(10)
            process.interrupt("stop")

        sim.process(interrupter(sim))
        sim.run()
        assert process.value == ("interrupted", "stop")
        assert sim.now == 10

    def test_interrupt_while_waiting_on_allof_then_continue(self, sim):
        """After an interrupt, the stale AllOf trigger must not resume the
        process a second time."""
        trail = []
        late = sim.timeout(50, "late")
        early = sim.timeout(5, "early")

        def victim(sim):
            try:
                yield sim.all_of([early, late])
            except Interrupt:
                trail.append(("interrupted", sim.now))
            yield sim.timeout(100)
            trail.append(("done", sim.now))

        process = sim.process(victim(sim))

        def interrupter(sim):
            yield sim.timeout(20)  # after `early` fired, before `late`
            process.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert trail == [("interrupted", 20), ("done", 120)]

    def test_interrupting_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1)
            return "ok"

        process = sim.process(quick(sim))
        sim.run()
        process.interrupt("too late")
        sim.run()
        assert process.value == "ok"


class TestRunUntil:
    def test_event_at_exact_until_is_delivered(self, sim):
        seen = []
        sim.timeout(10).add_callback(lambda e: seen.append(10))
        sim.timeout(11).add_callback(lambda e: seen.append(11))
        sim.run(until=10)
        assert seen == [10]
        assert sim.now == 10
        sim.run()
        assert seen == [10, 11]
        assert sim.now == 11

    def test_time_advances_to_until_with_no_events(self, sim):
        sim.run(until=123)
        assert sim.now == 123

    def test_time_advances_to_until_past_last_event(self, sim):
        sim.timeout(10)
        sim.run(until=40)
        assert sim.now == 40

    def test_until_in_the_past_delivers_nothing(self, sim):
        sim.timeout(100)
        sim.run()
        assert sim.now == 100
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("late")
        sim.run(until=50)
        assert seen == [] and sim.now == 100
        sim.run()
        assert seen == ["late"]

    def test_peek_reports_pending_same_instant_event(self, sim):
        sim.timeout(30)
        sim.run()
        assert sim.peek() is None
        sim.event().succeed()
        assert sim.peek() == 30


class TestReentrancy:
    def test_run_inside_run_is_rejected(self, sim):
        outcome = []

        def proc(sim):
            try:
                sim.run()
            except SimulationError:
                outcome.append("rejected")
            yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run()
        assert outcome == ["rejected"]

    def test_running_flag_resets_after_failure(self, sim):
        """A crashed run() must not leave the simulator wedged."""

        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("boom")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError):
            sim.run()
        sim.timeout(5)
        sim.run()  # must not raise "not reentrant"
        assert sim.now >= 5
