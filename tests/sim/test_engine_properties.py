"""Property-based tests of the simulation kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


class TestDeterminism:
    @given(
        delays=st.lists(
            st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_identical_programs_produce_identical_traces(self, delays):
        """Two runs of the same process graph log identical event orders."""

        def run():
            sim = Simulator()
            log = []

            def proc(sim, pid, waits):
                for w in waits:
                    yield sim.timeout(w)
                    log.append((sim.now, pid))

            for pid, waits in enumerate(delays):
                sim.process(proc(sim, pid, waits))
            sim.run()
            return log

        assert run() == run()

    @given(
        delays=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20)
    )
    @settings(max_examples=60)
    def test_time_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc(sim, delay):
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.process(proc(sim, delay))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)


class TestResourceInvariants:
    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),  # arrival
                st.integers(min_value=1, max_value=20),  # service
            ),
            min_size=1,
            max_size=20,
        ),
        capacity=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_concurrency_never_exceeds_capacity(self, jobs, capacity):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        active = {"now": 0, "peak": 0}

        def job(sim, arrival, service):
            yield sim.timeout(arrival)
            yield resource.request()
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            try:
                yield sim.timeout(service)
            finally:
                active["now"] -= 1
                resource.release()

        for arrival, service in jobs:
            sim.process(job(sim, arrival, service))
        sim.run()
        assert active["now"] == 0
        assert active["peak"] <= capacity

    @given(
        jobs=st.lists(st.integers(min_value=1, max_value=15), min_size=1, max_size=15)
    )
    @settings(max_examples=60)
    def test_single_server_total_busy_time_is_sum_of_services(self, jobs):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def job(sim, service):
            yield from resource.use(service)

        for service in jobs:
            sim.process(job(sim, service))
        sim.run()
        assert resource.total_busy_ns == sum(jobs)
        assert sim.now == sum(jobs)


class TestStoreInvariants:
    @given(
        puts=st.lists(st.integers(), min_size=0, max_size=30),
        getters=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60)
    def test_items_delivered_fifo_no_loss_no_duplication(self, puts, getters):
        sim = Simulator()
        store = Store(sim)
        received = []

        def getter(sim):
            item = yield store.get()
            received.append(item)

        for _ in range(getters):
            sim.process(getter(sim))
        for item in puts:
            store.put(item)
        sim.run()
        delivered = min(len(puts), getters)
        assert received == puts[:delivered]
        assert len(store) == len(puts) - delivered
