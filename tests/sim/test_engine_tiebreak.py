"""The step() tie-break hook used by the schedule-space model checker."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Store


def _drain(sim):
    while sim.peek() is not None:
        sim.step()


def run_with_tiebreak(tiebreak):
    """Three processes wake at the same instant and append their tag."""
    sim = Simulator()
    order = []
    store_a, store_b, store_c = Store(sim), Store(sim), Store(sim)

    def waiter(store, tag):
        yield store.get()
        order.append(tag)

    sim.process(waiter(store_a, "a"), name="a")
    sim.process(waiter(store_b, "b"), name="b")
    sim.process(waiter(store_c, "c"), name="c")

    def kicker(sim):
        yield sim.timeout(10)
        store_a.put(1)
        store_b.put(2)
        store_c.put(3)

    sim.process(kicker(sim), name="kick")
    sim.tiebreak = tiebreak
    _drain(sim)
    return order


def test_default_is_fifo():
    assert run_with_tiebreak(None) == ["a", "b", "c"]


def test_zero_choice_matches_fifo():
    calls = []

    def first(ready):
        calls.append(len(ready))
        return 0

    assert run_with_tiebreak(first) == ["a", "b", "c"]
    assert calls  # the hook was consulted


@pytest.mark.no_sanitize  # reordering is the point; fifo-order would fire
def test_tiebreak_reorders_same_instant_events():
    def last(ready):
        return len(ready) - 1

    order = run_with_tiebreak(last)
    assert sorted(order) == ["a", "b", "c"]
    assert order != ["a", "b", "c"]


def test_step_equals_run_without_hook():
    def world():
        sim = Simulator()
        log = []

        def proc(sim, tag, delay):
            yield sim.timeout(delay)
            log.append((tag, sim.now))
            yield sim.timeout(delay)
            log.append((tag, sim.now))

        for tag, delay in (("x", 5), ("y", 5), ("z", 7)):
            sim.process(proc(sim, tag, delay), name=tag)
        return sim, log

    sim_run, log_run = world()
    sim_run.run()
    sim_step, log_step = world()
    _drain(sim_step)
    assert log_run == log_step
