"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim):
        res = Resource(sim, capacity=2)
        assert res.request().triggered
        assert res.request().triggered
        assert res.in_use == 2

    def test_waiters_queue_fifo(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(sim, tag, hold):
            yield res.request()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(worker(sim, "a", 10))
        sim.process(worker(sim, "b", 10))
        sim.process(worker(sim, "c", 10))
        sim.run()
        assert order == [("start", "a", 0), ("start", "b", 10), ("start", "c", 20)]

    def test_use_helper_serializes(self, sim):
        res = Resource(sim, capacity=1)
        done = []

        def worker(sim, tag):
            yield from res.use(5)
            done.append((tag, sim.now))

        for tag in range(3):
            sim.process(worker(sim, tag))
        sim.run()
        assert done == [(0, 5), (1, 10), (2, 15)]

    def test_release_idle_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_utilization_single_worker(self, sim):
        res = Resource(sim, capacity=1)

        def worker(sim):
            yield sim.timeout(50)
            yield from res.use(50)

        sim.process(worker(sim))
        sim.run(until=100)
        assert res.utilization() == pytest.approx(0.5)

    def test_utilization_zero_window(self, sim):
        res = Resource(sim, capacity=1)
        assert res.utilization() == 0.0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered
        assert got.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        result = []

        def getter(sim):
            item = yield store.get()
            result.append((sim.now, item))

        def putter(sim):
            yield sim.timeout(40)
            store.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert result == [(40, "late")]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        result = []

        def getter(sim, tag):
            item = yield store.get()
            result.append((tag, item))

        def putter(sim):
            yield sim.timeout(1)
            store.put("first")
            store.put("second")

        sim.process(getter(sim, "g1"))
        sim.process(getter(sim, "g2"))
        sim.process(putter(sim))
        sim.run()
        assert result == [("g1", "first"), ("g2", "second")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.put(9)
        assert store.try_get() == (True, 9)
        assert len(store) == 0
