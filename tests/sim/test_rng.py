"""Tests for deterministic RNG streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text())
    def test_seed_is_64_bit(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**64


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("client.0") is reg.stream("client.0")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x")
        b = RngRegistry(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(7)
        reg1.stream("other")  # created first
        seq1 = [reg1.stream("x").random() for _ in range(5)]

        reg2 = RngRegistry(7)
        seq2 = [reg2.stream("x").random() for _ in range(5)]
        assert seq1 == seq2

    def test_different_seeds_diverge(self):
        a = RngRegistry(1).stream("x")
        b = RngRegistry(2).stream("x")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]
