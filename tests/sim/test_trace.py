"""Tests for the tracer."""

from repro.sim import Tracer


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(1, "nic", "send")
        assert tracer.records == []

    def test_records_when_enabled(self):
        tracer = Tracer(enabled=True)
        tracer.emit(5, "nic", "send", {"bytes": 32})
        assert len(tracer.records) == 1
        rec = tracer.records[0]
        assert (rec.time_ns, rec.source, rec.event) == (5, "nic", "send")

    def test_capacity_drops_excess(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.emit(i, "s", "e")
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_matching_filters(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1, "a", "send")
        tracer.emit(2, "a", "recv")
        tracer.emit(3, "b", "send")
        assert [r.time_ns for r in tracer.matching("send")] == [1, 3]

    def test_clear(self):
        tracer = Tracer(enabled=True, capacity=1)
        tracer.emit(1, "a", "x")
        tracer.emit(2, "a", "y")
        tracer.clear()
        assert tracer.records == []
        assert tracer.dropped == 0

    def test_str_formats(self):
        tracer = Tracer(enabled=True)
        tracer.emit(10, "nic0", "dma", "detail")
        assert "nic0" in str(tracer.records[0])
        assert "dma" in str(tracer.records[0])
