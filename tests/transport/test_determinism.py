"""Cross-transport determinism: same seed, byte-identical run.

detlint proves source-level properties (no ad-hoc RNGs, no set iteration
on scheduling paths); this test checks the property those rules exist to
protect: running any registered transport twice with the same seed yields
a byte-identical serialized trace.  The trace records only per-run
quantities (client index, call index, simulated timestamps) — global
counters such as ``req_id`` advance across runs within one process and
must never influence behaviour.
"""

import json

import pytest

from repro import transport
from repro.transport import Topology

N_CLIENTS = 4
BATCHES = 3
BATCH_SIZE = 2
HORIZON_NS = 20_000_000


def _run_once(name: str, seed: int) -> bytes:
    topo = Topology.build(
        server_names=("server",),
        n_client_machines=2,
        machine_cores=8,
        seed=seed,
    )
    server = topo.build_server(
        name,
        lambda request: request.payload,
        group_size=N_CLIENTS,
        time_slice_ns=50_000,
        block_size=4096,
        blocks_per_client=4,
        n_server_threads=2,
    )
    clients = topo.connect_clients(server, N_CLIENTS)
    server.start()

    trace = []

    def driver(sim, index, client):
        for batch in range(BATCHES):
            handles = []
            for _ in range(BATCH_SIZE):
                handle = yield from client.async_call(
                    "echo", payload=batch, data_bytes=32
                )
                handles.append(handle)
            yield from client.flush()
            yield from client.poll_completions(handles)
            for call, handle in enumerate(handles):
                trace.append(
                    (index, batch, call, handle.posted_ns, handle.completed_ns)
                )

    for index, client in enumerate(clients):
        topo.sim.process(
            driver(topo.sim, index, client), name=f"det.c{index}"
        )
    topo.sim.run(until=HORIZON_NS)
    payload = {
        "transport": name,
        "seed": seed,
        "end_ns": topo.sim.now,
        "trace": sorted(trace),
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("name", transport.names())
def test_same_seed_is_byte_identical(name):
    first = _run_once(name, seed=11)
    second = _run_once(name, seed=11)
    assert first == second
    # And the run actually did work: every client completed every call.
    completed = [
        row for row in json.loads(first)["trace"] if row[4] is not None
    ]
    assert len(completed) == N_CLIENTS * BATCHES * BATCH_SIZE


@pytest.mark.parametrize("name", transport.names())
def test_different_seed_perturbs_the_run(name):
    """Seeds must actually reach the transport's stochastic components
    (think times aside, timing noise and cache randomization shift)."""
    baseline = _run_once(name, seed=11)
    other = _run_once(name, seed=12)
    # Identical traces across seeds are suspicious but not wrong for a
    # fully-deterministic transport; only require both runs completed.
    assert json.loads(baseline)["trace"] and json.loads(other)["trace"]
