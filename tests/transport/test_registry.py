"""Tests for the transport registry — the single name->implementation map."""

import pytest

from repro import transport
from repro.baselines.common import BaselineConfig
from repro.core.config import ScaleRpcConfig
from repro.transport import (
    Capabilities,
    TransportError,
    TransportSpec,
    bench_systems,
    dfs_systems,
    register,
    register_spec,
)
from repro.transport.registry import _REGISTRY


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway transports without polluting the
    process-global registry."""
    snapshot = dict(_REGISTRY)
    yield _REGISTRY
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


class TestLookup:
    def test_all_builtins_registered(self):
        for name in ("scalerpc", "scalerpc-static", "rawwrite", "herd",
                     "fasst", "selfrpc"):
            spec = transport.get(name)
            assert spec.name == name
            assert spec.server_cls is not None
            assert spec.config_cls is not None

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(TransportError, match="scalerpc"):
            transport.get("tcp")

    def test_names_in_registration_order(self):
        assert transport.names()[0] == "scalerpc"
        assert set(transport.names()) >= {
            "scalerpc", "scalerpc-static", "rawwrite", "herd", "fasst", "selfrpc"
        }

    def test_bench_and_dfs_subsets(self):
        assert bench_systems() == ("scalerpc", "scalerpc-static", "rawwrite",
                                   "herd", "fasst")
        assert dfs_systems() == ("scalerpc", "rawwrite", "selfrpc")

    def test_capabilities_match_paper_tables(self):
        assert transport.get("scalerpc").caps.static_mapping is False
        assert transport.get("rawwrite").caps.static_mapping is True
        for name in ("herd", "fasst"):
            caps = transport.get(name).caps
            assert caps.uses_cq_polling
            assert not caps.reliable
            assert not caps.variable_size_response
        for name in ("scalerpc", "rawwrite", "selfrpc"):
            assert transport.get(name).caps.variable_size_response


class TestMakeConfig:
    def test_knobs_filtered_to_native_schema(self):
        # group_size exists on ScaleRpcConfig but not BaselineConfig;
        # block_size exists on both.
        cfg = transport.get("scalerpc").make_config(group_size=8, block_size=2048)
        assert isinstance(cfg, ScaleRpcConfig)
        assert cfg.group_size == 8
        assert cfg.block_size == 2048

        cfg = transport.get("rawwrite").make_config(group_size=8, block_size=2048)
        assert isinstance(cfg, BaselineConfig)
        assert cfg.block_size == 2048
        assert not hasattr(cfg, "group_size")

    def test_none_knobs_fall_back_to_defaults(self):
        cfg = transport.get("rawwrite").make_config(block_size=None)
        assert cfg.block_size == BaselineConfig().block_size

    def test_variant_overrides_win(self):
        dynamic = transport.get("scalerpc").make_config()
        static = transport.get("scalerpc-static").make_config()
        assert dynamic.dynamic_scheduling is True
        assert static.dynamic_scheduling is False
        # Even an explicit knob cannot undo the variant's defining override.
        forced = transport.get("scalerpc-static").make_config(dynamic_scheduling=True)
        assert forced.dynamic_scheduling is False


class TestBuildServer:
    def _topo(self):
        return transport.Topology.build(seed=1)

    def test_config_and_knobs_are_exclusive(self):
        topo = self._topo()
        with pytest.raises(TypeError):
            transport.get("rawwrite").build_server(
                topo.server_node, lambda r: r.payload,
                config=BaselineConfig(), block_size=2048,
            )

    def test_each_transport_constructs_and_connects(self):
        for name in transport.names():
            topo = self._topo()
            server = transport.get(name).build_server(
                topo.server_node, lambda r: r.payload, group_size=8
            )
            client = server.connect(topo.machines[0])
            assert client is not None

    def test_ready_config_is_used_verbatim(self):
        topo = self._topo()
        cfg = BaselineConfig(block_size=8192)
        server = transport.get("rawwrite").build_server(
            topo.server_node, lambda r: r.payload, config=cfg
        )
        assert server.config is cfg


class TestRegistration:
    def test_duplicate_name_rejected(self, scratch_registry):
        with pytest.raises(TransportError, match="already registered"):
            register_spec(TransportSpec(
                name="scalerpc",
                server="repro.core.server:ScaleRpcServer",
                config="repro.core.config:ScaleRpcConfig",
            ))

    def test_register_decorator(self, scratch_registry):
        from repro.baselines.rawwrite import RawWriteServer

        @register("rawwrite-copy", caps=Capabilities(in_rpc_bench=True))
        class CopyServer(RawWriteServer):
            """A rawwrite clone for testing registration."""

        spec = transport.get("rawwrite-copy")
        assert spec.server_cls is CopyServer
        assert spec.config_cls is BaselineConfig
        assert spec.caps.in_rpc_bench
        assert spec.description == "A rawwrite clone for testing registration."
        assert "rawwrite-copy" in bench_systems()
