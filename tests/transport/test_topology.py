"""Tests for the shared Topology builder."""

import pytest

from repro.transport import Topology, TopologyConfig


class TestBuild:
    def test_defaults(self):
        topo = Topology.build()
        assert [n.name for n in topo.server_nodes] == ["server"]
        assert [m.name for m in topo.machines] == ["m0"]
        assert topo.server_node is topo.server_nodes[0]
        assert topo.sim.now == 0

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            Topology.build(TopologyConfig(), seed=2)

    def test_multi_server_names(self):
        topo = Topology.build(server_names=("p0", "p1", "p2"), n_client_machines=2)
        assert [n.name for n in topo.server_nodes] == ["p0", "p1", "p2"]
        with pytest.raises(ValueError):
            _ = topo.server_node

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology.build(server_names=())
        with pytest.raises(ValueError):
            Topology.build(n_client_machines=0)

    def test_all_nodes_share_sim_and_fabric(self):
        topo = Topology.build(n_client_machines=3)
        for node in topo.server_nodes + topo.machines:
            assert node.sim is topo.sim
            assert node.fabric is topo.fabric


class TestClients:
    def test_connect_clients_round_robin(self):
        topo = Topology.build(n_client_machines=3)
        server = topo.build_server("rawwrite", lambda r: r.payload)
        clients = topo.connect_clients(server, 7)
        assert len(clients) == 7
        machines = [c.machine.name for c in clients]
        assert machines == ["m0", "m1", "m2", "m0", "m1", "m2", "m0"]

    def test_next_machine_round_robin(self):
        topo = Topology.build(n_client_machines=2)
        names = [topo.next_machine().name for _ in range(5)]
        assert names == ["m0", "m1", "m0", "m1", "m0"]

    def test_build_server_on_named_node(self):
        topo = Topology.build(server_names=("p0", "p1"))
        server = topo.build_server(
            "rawwrite", lambda r: r.payload, node=topo.server_nodes[1]
        )
        assert server.node is topo.server_nodes[1]


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        a = Topology.build(seed=7).rng.stream("x").random()
        b = Topology.build(seed=7).rng.stream("x").random()
        c = Topology.build(seed=8).rng.stream("x").random()
        assert a == b
        assert a != c

    def test_end_to_end_echo(self):
        topo = Topology.build(seed=1)
        server = topo.build_server("scalerpc", lambda r: r.payload, group_size=4)
        [client] = topo.connect_clients(server, 1)
        server.start()
        got = []

        def call(sim):
            response = yield from client.sync_call("echo", payload="hi")
            got.append((response.payload, sim.now))

        topo.sim.process(call(topo.sim))
        topo.sim.run(until=1_000_000)
        assert got and got[0][0] == "hi"
