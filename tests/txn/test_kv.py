"""Unit and property tests for the KV shard."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import Fabric, Node
from repro.sim import Simulator
from repro.txn import KvError, KvStore
from repro.txn.kv import ITEM_SLOT_BYTES


@pytest.fixture
def store():
    sim = Simulator()
    node = Node(sim, "p", Fabric(sim))
    return KvStore(node, capacity_items=256, n_buckets=16)


class TestInsertLookup:
    def test_insert_then_read(self, store):
        ref = store.insert("k", 42)
        assert store.read(ref) == (42, 1)
        assert store.lookup("k") is ref

    def test_missing_key(self, store):
        assert store.lookup("nope") is None

    def test_duplicate_insert_rejected(self, store):
        store.insert("k", 1)
        with pytest.raises(KvError):
            store.insert("k", 2)

    def test_capacity_enforced(self):
        sim = Simulator()
        node = Node(sim, "p", Fabric(sim))
        small = KvStore(node, capacity_items=2)
        small.insert(1, "a")
        small.insert(2, "b")
        with pytest.raises(KvError):
            small.insert(3, "c")

    def test_item_slots_disjoint(self, store):
        refs = [store.insert(i, i) for i in range(10)]
        addrs = [r.base_addr for r in refs]
        assert len(set(addrs)) == 10
        assert all(b - a >= ITEM_SLOT_BYTES for a, b in zip(addrs, addrs[1:]))

    def test_field_addresses_are_contiguous(self, store):
        ref = store.insert("k", 0)
        assert ref.version_addr == ref.value_addr + 8
        assert ref.lock_addr == ref.value_addr + 16


class TestLocking:
    def test_lock_unlock(self, store):
        ref = store.insert("k", 0)
        assert store.try_lock(ref, 7)
        assert store.lock_owner(ref) == 7
        assert store.unlock(ref, 7)
        assert store.lock_owner(ref) == 0

    def test_conflicting_lock_fails(self, store):
        ref = store.insert("k", 0)
        assert store.try_lock(ref, 7)
        assert not store.try_lock(ref, 8)

    def test_reentrant_lock(self, store):
        ref = store.insert("k", 0)
        assert store.try_lock(ref, 7)
        assert store.try_lock(ref, 7)

    def test_unlock_wrong_owner_refused(self, store):
        ref = store.insert("k", 0)
        store.try_lock(ref, 7)
        assert not store.unlock(ref, 8)
        assert store.lock_owner(ref) == 7

    def test_txn_id_zero_rejected(self, store):
        ref = store.insert("k", 0)
        with pytest.raises(KvError):
            store.try_lock(ref, 0)


class TestCommitPaths:
    def test_local_commit(self, store):
        ref = store.insert("k", 10)
        store.try_lock(ref, 7)
        store.apply_commit(ref, 99, 2)
        assert store.read(ref) == (99, 2)
        assert store.lock_owner(ref) == 0

    def test_one_sided_commit_via_rdma_write(self):
        """The full remote path: RDMA write of a CommitRecord updates
        value, version, and lock without participant CPU."""
        from repro.rdma import Transport, post_write
        from repro.txn import CommitRecord

        sim = Simulator()
        fabric = Fabric(sim)
        participant = Node(sim, "p", fabric)
        coordinator = Node(sim, "c", fabric)
        store = KvStore(participant, capacity_items=16)
        ref = store.insert("k", 10)
        store.try_lock(ref, 5)
        qp_c = coordinator.create_qp(Transport.RC)
        qp_p = participant.create_qp(Transport.RC)
        qp_c.connect(qp_p)
        scratch = coordinator.register_memory(4096)
        post_write(
            qp_c,
            local_addr=scratch.range.base,
            remote_addr=ref.value_addr,
            size=40,
            payload=CommitRecord(value=77, version=2),
            signaled=False,
        )
        sim.run()
        assert store.read(ref) == (77, 2)
        assert store.lock_owner(ref) == 0
        assert store.remote_commits == 1

    def test_one_sided_version_read(self):
        from repro.rdma import Transport, post_read

        sim = Simulator()
        fabric = Fabric(sim)
        participant = Node(sim, "p", fabric)
        coordinator = Node(sim, "c", fabric)
        store = KvStore(participant, capacity_items=16)
        ref = store.insert("k", 10)
        qp_c = coordinator.create_qp(Transport.RC)
        qp_p = participant.create_qp(Transport.RC)
        qp_c.connect(qp_p)
        scratch = coordinator.register_memory(4096)
        wr = post_read(qp_c, scratch.range.base, ref.version_addr, 8)
        sim.run()
        assert wr.completion.value.payload == 1


class TestKvProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "lock", "unlock", "commit"]),
                st.integers(min_value=0, max_value=15),  # key
                st.integers(min_value=1, max_value=4),  # txn id
            ),
            max_size=120,
        )
    )
    @settings(max_examples=50)
    def test_lock_state_machine(self, ops):
        """Locks behave as exclusive, owner-released mutexes."""
        sim = Simulator()
        node = Node(sim, "p", Fabric(sim))
        store = KvStore(node, capacity_items=64)
        owners: dict[int, int] = {}
        versions: dict[int, int] = {}
        for op, key, txn in ops:
            ref = store.lookup(key)
            if op == "insert":
                if ref is None:
                    store.insert(key, 0)
                    owners[key] = 0
                    versions[key] = 1
                continue
            if ref is None:
                continue
            if op == "lock":
                expected = owners[key] in (0, txn)
                assert store.try_lock(ref, txn) is expected
                if expected:
                    owners[key] = txn
            elif op == "unlock":
                expected = owners[key] == txn
                assert store.unlock(ref, txn) is expected
                if expected:
                    owners[key] = 0
            else:  # commit
                versions[key] += 1
                store.apply_commit(ref, txn, versions[key])
                owners[key] = 0
            assert store.lock_owner(ref) == owners[key]
            assert store.version(ref) == versions[key]
