"""Integration tests for the ScaleTX protocol end to end."""

import pytest

from repro.txn import (
    SmallBankConfig,
    TxnClusterConfig,
    build_txn_cluster,
    populate_object_store,
    populate_smallbank,
)
from repro.txn.smallbank import checking, savings


def small_cluster(system="scaletx", n_coordinators=4, **kwargs):
    config = TxnClusterConfig(
        system=system,
        n_coordinators=n_coordinators,
        n_client_machines=2,
        items_per_shard=1 << 10,
        group_size=8,
        time_slice_ns=50_000,
        **kwargs,
    )
    return build_txn_cluster(config)


def run_txns(cluster, txns, cap_ns=200_000_000):
    """Run a list of (coordinator_idx, read_set, write_set, compute) and
    return the commit flags in completion order."""
    results = []
    drivers = []

    def driver(sim, coordinator, read_set, write_set, compute):
        committed = yield from coordinator.run(read_set, write_set, compute=compute)
        results.append(committed)

    for idx, read_set, write_set, compute in txns:
        drivers.append(
            cluster.sim.process(
                driver(cluster.sim, cluster.coordinators[idx], read_set, write_set, compute)
            )
        )
    sim = cluster.sim
    while sim.peek() is not None and sim.now < cap_ns:
        if all(d.triggered for d in drivers):
            break
        sim.step()
    assert all(d.triggered for d in drivers), "transactions did not finish"
    # Let fire-and-forget one-sided commit writes land (the coordinator
    # does not wait for them — that's the point of the design).
    sim.run(until=sim.now + 50_000)
    return results


@pytest.mark.parametrize("system", ["scaletx", "scaletx-o", "rawwrite", "herd", "fasst"])
class TestCommitPaths:
    def test_single_write_txn_commits(self, system):
        cluster = small_cluster(system)
        populate_object_store(cluster, 64)
        results = run_txns(cluster, [(0, (), {5: "new"}, None)])
        assert results == [True]
        shard = cluster.shard_of(5)
        ref = cluster.participants[shard].store.lookup(5)
        value, version = cluster.participants[shard].store.read(ref)
        assert value == "new"
        assert version == 2
        assert cluster.participants[shard].store.lock_owner(ref) == 0

    def test_read_write_txn_sees_values(self, system):
        cluster = small_cluster(system)
        populate_object_store(cluster, 64)
        captured = {}

        def compute(values):
            captured.update(values)
            return {7: "w"}

        results = run_txns(cluster, [(0, (1, 2), {7: None}, compute)])
        assert results == [True]
        assert captured[1] == ("v", 1, 0)
        assert captured[2] == ("v", 2, 0)

    def test_read_only_txn(self, system):
        cluster = small_cluster(system)
        populate_object_store(cluster, 64)
        results = run_txns(cluster, [(0, (1, 2, 3), {}, None)])
        assert results == [True]
        # Versions untouched by a read-only transaction.
        for key in (1, 2, 3):
            shard = cluster.shard_of(key)
            ref = cluster.participants[shard].store.lookup(key)
            assert cluster.participants[shard].store.version(ref) == 1


class TestConflicts:
    def test_write_write_conflict_aborts_one(self):
        cluster = small_cluster("scaletx")
        populate_object_store(cluster, 64)
        results = run_txns(
            cluster,
            [
                (0, (), {9: "a"}, None),
                (1, (), {9: "b"}, None),
            ],
        )
        # Both target key 9 concurrently: at most one lock conflict, but
        # both eventually... no retries here, so exactly one may abort;
        # at least one must commit.
        assert any(results)

    def test_validation_abort_on_concurrent_write(self):
        """A reader whose read-set version changes must abort."""
        cluster = small_cluster("scaletx", n_coordinators=2)
        populate_object_store(cluster, 64)
        shard = cluster.shard_of(3)
        participant = cluster.participants[shard]
        results = []

        def reader(sim):
            coordinator = cluster.coordinators[0]
            # Patch validation window: bump the version between execution
            # and validation by intercepting after execution.
            original = coordinator._validate

            def hacked(txn_id, read_set, views):
                ref = participant.store.lookup(3)
                participant.store.apply_commit(ref, "sneak", views[3].version + 1)
                return original(txn_id, read_set, views)

            coordinator._validate = hacked
            committed = yield from coordinator.run((3,), {5: "x"})
            results.append(committed)

        cluster.sim.process(reader(cluster.sim))
        cluster.sim.run(until=50_000_000)
        assert results == [False]
        assert cluster.coordinators[0].stats.aborted_validation == 1
        # The write-set lock was released by the abort.
        ref5 = cluster.participants[cluster.shard_of(5)].store.lookup(5)
        assert cluster.participants[cluster.shard_of(5)].store.lock_owner(ref5) == 0

    def test_aborted_txn_leaves_no_writes(self):
        cluster = small_cluster("scaletx")
        populate_object_store(cluster, 64)
        shard = cluster.shard_of(9)
        ref = cluster.participants[shard].store.lookup(9)
        # Hold the lock so the transaction's execution fails.
        cluster.participants[shard].store.try_lock(ref, 999)
        results = run_txns(cluster, [(0, (), {9: "mine"}, None)])
        assert results == [False]
        value, version = cluster.participants[shard].store.read(ref)
        assert value == ("v", 9, 0)
        assert version == 1
        assert cluster.coordinators[0].stats.aborted_locks == 1


class TestMoneyConservation:
    @pytest.mark.parametrize("system", ["scaletx", "scaletx-o"])
    def test_smallbank_conserves_money(self, system):
        """Serializability check: concurrent SmallBank transfers keep the
        total balance constant (no lost updates)."""
        from repro.txn import SmallBankConfig, run_smallbank

        config = SmallBankConfig(
            cluster=TxnClusterConfig(
                system=system,
                n_coordinators=8,
                n_client_machines=2,
                items_per_shard=1 << 12,
                group_size=8,
                time_slice_ns=50_000,
            ),
            accounts_per_server=50,
            warmup_ns=200_000,
            measure_ns=600_000,
        )
        result = run_smallbank(config)
        assert result.committed > 0
        # Rebuild to inspect: run_smallbank owns its cluster, so replay
        # with explicit drivers instead.

    def test_transfers_conserve_total(self):
        cluster = small_cluster("scaletx", n_coordinators=6)
        populate_smallbank(cluster, 30)
        total_before = self._total(cluster, 30)
        txns = []
        for i in range(6):
            a, b = (2 * i) % 30, (2 * i + 7) % 30
            ka, kb = checking(a), checking(b)

            def compute(values, ka=ka, kb=kb):
                return {ka: values[ka] - 5, kb: values[kb] + 5}

            txns.append((i, (), {ka: None, kb: None}, compute))
        results = run_txns(cluster, txns)
        assert any(results)
        assert self._total(cluster, 30) == total_before

    @staticmethod
    def _total(cluster, n_accounts):
        total = 0
        for account in range(n_accounts):
            for key in (checking(account), savings(account)):
                shard = cluster.shard_of(key)
                ref = cluster.participants[shard].store.lookup(key)
                total += cluster.participants[shard].store.read(ref)[0]
        return total


class TestOneSidedVsRpcParity:
    def test_one_sided_and_rpc_commits_agree(self):
        """The same transaction through ScaleTX and ScaleTX-O leaves the
        same state."""
        outcomes = {}
        for system in ("scaletx", "scaletx-o"):
            cluster = small_cluster(system)
            populate_object_store(cluster, 64)
            run_txns(cluster, [(0, (1,), {2: "x", 3: "y"}, None)])
            state = {}
            for key in (1, 2, 3):
                shard = cluster.shard_of(key)
                ref = cluster.participants[shard].store.lookup(key)
                state[key] = cluster.participants[shard].store.read(ref)
            outcomes[system] = state
        assert outcomes["scaletx"] == outcomes["scaletx-o"]

    def test_one_sided_commit_skips_participant_cpu(self):
        cluster = small_cluster("scaletx")
        populate_object_store(cluster, 64)
        run_txns(cluster, [(0, (), {5: "w"}, None)])
        shard = cluster.shard_of(5)
        assert cluster.participants[shard].rpc_commits == 0
        assert cluster.participants[shard].store.remote_commits == 1

    def test_rpc_variant_commits_via_participant(self):
        cluster = small_cluster("scaletx-o")
        populate_object_store(cluster, 64)
        run_txns(cluster, [(0, (), {5: "w"}, None)])
        shard = cluster.shard_of(5)
        assert cluster.participants[shard].rpc_commits == 1
        assert cluster.participants[shard].store.remote_commits == 0


class TestGlobalSync:
    def test_synchronizer_attached_for_scalerpc(self):
        cluster = small_cluster("scaletx")
        assert cluster.synchronizer is not None
        assert all(s.synchronizer is cluster.synchronizer for s in cluster.servers)

    def test_no_synchronizer_for_baselines(self):
        cluster = small_cluster("rawwrite")
        assert cluster.synchronizer is None

    def test_servers_switch_in_lockstep(self):
        """With enough clients for two groups, synchronized servers'
        context switches stay within half a slice of each other."""
        cluster = small_cluster("scaletx", n_coordinators=20)
        populate_object_store(cluster, 256)
        switch_times = {id(s): [] for s in cluster.servers}
        for server in cluster.servers:
            original = server._notify_unresponded

            def spy(group, server=server, original=original):
                switch_times[id(server)].append(server.sim.now)
                return original(group)

            server._notify_unresponded = spy

        def driver(sim, idx, coordinator):
            rng = cluster.rng.stream(f"t{idx}")
            for _ in range(30):
                keys = rng.sample(range(256), 2)
                yield from coordinator.run((keys[0],), {keys[1]: idx})

        for idx, coordinator in enumerate(cluster.coordinators):
            cluster.sim.process(driver(cluster.sim, idx, coordinator))
        cluster.sim.run(until=2_000_000)
        series = [times for times in switch_times.values() if times]
        assert len(series) == len(cluster.servers)
        length = min(len(t) for t in series)
        assert length >= 2
        for i in range(1, length):  # skip the unaligned bootstrap switch
            instants = [t[i] for t in series]
            spread = max(instants) - min(instants)
            assert spread <= cluster.config.time_slice_ns // 2


class TestRetries:
    def test_retry_succeeds_after_lock_released(self):
        cluster = small_cluster("scaletx")
        populate_object_store(cluster, 64)
        shard = cluster.shard_of(9)
        ref = cluster.participants[shard].store.lookup(9)
        cluster.participants[shard].store.try_lock(ref, 999)
        out = {}

        def unlocker(sim):
            yield sim.timeout(30_000)
            cluster.participants[shard].store.unlock(ref, 999)

        def driver(sim):
            committed, attempts = yield from cluster.coordinators[0].run_with_retries(
                (), {9: "mine"}, max_attempts=5, backoff_ns=15_000
            )
            out["committed"] = committed
            out["attempts"] = attempts

        cluster.sim.process(unlocker(cluster.sim))
        cluster.sim.process(driver(cluster.sim))
        cluster.sim.run(until=100_000_000)
        assert out["committed"] is True
        assert out["attempts"] >= 2

    def test_retries_exhaust(self):
        cluster = small_cluster("scaletx")
        populate_object_store(cluster, 64)
        shard = cluster.shard_of(9)
        ref = cluster.participants[shard].store.lookup(9)
        cluster.participants[shard].store.try_lock(ref, 999)  # never released
        out = {}

        def driver(sim):
            committed, attempts = yield from cluster.coordinators[0].run_with_retries(
                (), {9: "mine"}, max_attempts=3, backoff_ns=1_000
            )
            out["committed"] = committed
            out["attempts"] = attempts

        cluster.sim.process(driver(cluster.sim))
        cluster.sim.run(until=100_000_000)
        assert out["committed"] is False
        assert out["attempts"] == 3

    def test_invalid_attempts_rejected(self):
        cluster = small_cluster("scaletx")
        with pytest.raises(ValueError):
            next(cluster.coordinators[0].run_with_retries((), {1: "x"}, max_attempts=0))
