"""Tests for workload distributions."""

import pytest

from repro.sim.rng import RngRegistry
from repro.workloads import (
    gaussian_afd_think_time,
    hotspot_sampler,
    uniform_think_time,
    zipf_sampler,
)


def _rng(seed: int):
    """A draw stream for test inputs, derived the same way the sim does."""
    return RngRegistry(seed).stream("test")


class TestGaussianAfd:
    def test_stable_per_client_factor(self):
        think = gaussian_afd_think_time(1.0, base_ns=1000)
        rng = _rng(1)
        # Same client keeps its multiplier: means over many draws differ
        # between clients but are consistent within one.
        means = {}
        for client in (1, 2, 3):
            draws = [think(client, rng) for _ in range(500)]
            means[client] = sum(draws) / len(draws)
        assert len({round(m) for m in means.values()}) > 1

    def test_sigma_zero_is_uniform(self):
        think = gaussian_afd_think_time(0.0, base_ns=1000)
        rng = _rng(1)
        means = []
        for client in range(5):
            draws = [think(client, rng) for _ in range(2000)]
            means.append(sum(draws) / len(draws))
        spread = max(means) / min(means)
        assert spread < 1.2

    def test_larger_sigma_spreads_clients(self):
        rng = _rng(1)

        def spread(sigma):
            think = gaussian_afd_think_time(sigma, base_ns=1000)
            means = []
            for client in range(30):
                draws = [think(client, rng) for _ in range(300)]
                means.append(sum(draws) / len(draws))
            return max(means) / min(means)

        assert spread(1.0) > spread(0.2)

    def test_seed_changes_factors(self):
        rng = _rng(1)
        a = gaussian_afd_think_time(1.0, base_ns=1000, seed=0)
        b = gaussian_afd_think_time(1.0, base_ns=1000, seed=1)
        mean_a = sum(a(1, rng) for _ in range(500)) / 500
        mean_b = sum(b(1, rng) for _ in range(500)) / 500
        assert round(mean_a) != round(mean_b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            gaussian_afd_think_time(-0.1)

    def test_non_negative_values(self):
        think = gaussian_afd_think_time(1.0)
        rng = _rng(3)
        assert all(think(1, rng) >= 0 for _ in range(100))


class TestUniformThinkTime:
    def test_zero_mean(self):
        think = uniform_think_time(0)
        assert think(1, _rng(1)) == 0

    def test_mean_approx(self):
        think = uniform_think_time(1000)
        rng = _rng(1)
        draws = [think(1, rng) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(1000, rel=0.1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_think_time(-1)


class TestZipf:
    def test_range(self):
        sample = zipf_sampler(100, 0.9)
        rng = _rng(1)
        draws = [sample(rng) for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)

    def test_skew(self):
        sample = zipf_sampler(1000, 0.99)
        rng = _rng(1)
        draws = [sample(rng) for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)
        assert head > len(draws) * 0.4  # top 10% of keys get >40% of hits

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_sampler(0)
        with pytest.raises(ValueError):
            zipf_sampler(10, 1.5)


class TestHotspot:
    def test_hot_probability(self):
        sample = hotspot_sampler(1000, hot_fraction=0.04, hot_probability=0.6)
        rng = _rng(1)
        draws = [sample(rng) for _ in range(10000)]
        hot_hits = sum(1 for d in draws if d < 40)
        assert hot_hits / len(draws) == pytest.approx(0.6, abs=0.05)

    def test_cold_keys_covered(self):
        sample = hotspot_sampler(100, hot_fraction=0.1, hot_probability=0.5)
        rng = _rng(2)
        draws = [sample(rng) for _ in range(5000)]
        assert max(draws) >= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            hotspot_sampler(10, 0.0, 0.5)
        with pytest.raises(ValueError):
            hotspot_sampler(10, 0.5, 1.5)
