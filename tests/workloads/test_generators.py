"""Tests for the raw-verb workload generators."""

import pytest

from repro.workloads import (
    RawVerbConfig,
    run_inbound_write,
    run_outbound_write,
    run_ud_send,
)

QUICK = dict(warmup_ns=100_000, measure_ns=200_000, n_client_machines=3)


class TestOutbound:
    def test_small_scale_is_fast(self):
        result = run_outbound_write(RawVerbConfig(n_clients=8, **QUICK))
        assert result.throughput_mops > 15

    def test_collapse_at_scale(self):
        small = run_outbound_write(RawVerbConfig(n_clients=8, **QUICK))
        large = run_outbound_write(RawVerbConfig(n_clients=300, **QUICK))
        assert large.throughput_mops < 0.4 * small.throughput_mops

    def test_pcie_reads_track_tput_when_cached(self):
        result = run_outbound_write(RawVerbConfig(n_clients=8, **QUICK))
        assert result.pcie_rd_cur_mops == pytest.approx(
            result.throughput_mops, rel=0.3
        )


class TestInbound:
    def test_flat_with_small_blocks(self):
        few = run_inbound_write(RawVerbConfig(
            n_clients=20, block_size=512,
            warmup_ns=2_000_000, measure_ns=300_000, n_client_machines=3))
        many = run_inbound_write(RawVerbConfig(
            n_clients=200, block_size=512,
            warmup_ns=2_000_000, measure_ns=300_000, n_client_machines=3))
        assert many.throughput_mops > 0.6 * few.throughput_mops

    def test_thrash_with_big_blocks_many_clients(self):
        fits = run_inbound_write(RawVerbConfig(
            n_clients=400, block_size=512,
            warmup_ns=3_000_000, measure_ns=300_000))
        thrash = run_inbound_write(RawVerbConfig(
            n_clients=400, block_size=4096,
            warmup_ns=3_000_000, measure_ns=300_000))
        assert thrash.throughput_mops < 0.5 * fits.throughput_mops
        assert thrash.l3_miss_rate > 0.5
        assert fits.l3_miss_rate < 0.2


class TestUdSend:
    def test_flat_across_clients(self):
        a = run_ud_send(RawVerbConfig(n_clients=10, **QUICK))
        b = run_ud_send(RawVerbConfig(n_clients=200, **QUICK))
        assert b.throughput_mops == pytest.approx(a.throughput_mops, rel=0.2)
