"""Tests for the Section 5.1 discussion models: UD slicing and DCT."""

import pytest

from repro.workloads import (
    RawVerbConfig,
    compare_rc_dct_latency,
    run_dct_outbound,
    run_outbound_write,
    run_transfer_comparison,
)
from repro.workloads.transfer import UD_CHUNK


class TestLargeTransfers:
    @pytest.fixture(scope="class")
    def results(self):
        return run_transfer_comparison(total_bytes=4 << 20)

    def test_rc_approaches_link_bandwidth(self, results):
        # 56 Gbps = 7 GB/s; one big write should get close.
        assert 5.0 < results["rc"].gbytes_per_s <= 7.0
        assert results["rc"].messages == 1

    def test_ordered_ud_is_a_fraction_of_rc(self, results):
        ratio = results["ud"].gbytes_per_s / results["rc"].gbytes_per_s
        # Paper: 12.5%; anything clearly fractional reproduces the point.
        assert ratio < 0.35

    def test_ud_message_count_is_per_chunk(self, results):
        chunks = -(-(4 << 20) // UD_CHUNK)
        assert results["ud"].messages == 2 * chunks  # data + ack

    def test_pipelining_recovers_bandwidth(self, results):
        assert results["ud_pipelined"].gbytes_per_s > 3 * results["ud"].gbytes_per_s
        # But never exceeds the link.
        assert results["ud_pipelined"].gbytes_per_s <= 7.0

    def test_all_strategies_move_all_bytes(self, results):
        assert {r.total_bytes for r in results.values()} == {4 << 20}


class TestDct:
    def test_latency_penalty_when_switching(self):
        latency = compare_rc_dct_latency()
        # Paper: DCT adds up to ~3 us over RC.
        assert 500 < latency.dct_penalty_ns < 4_000
        assert latency.dct_ns > latency.rc_ns

    def test_dct_scales_flat(self):
        quick = dict(measure_ns=250_000, n_client_machines=3)
        few = run_dct_outbound(RawVerbConfig(n_clients=20, **quick))
        many = run_dct_outbound(RawVerbConfig(n_clients=300, **quick))
        assert many.throughput_mops > 0.6 * few.throughput_mops

    def test_dct_below_rc_peak_but_above_thrashed_rc(self):
        quick = dict(measure_ns=250_000)
        dct_small = run_dct_outbound(RawVerbConfig(n_clients=10, **quick))
        rc_small = run_outbound_write(RawVerbConfig(n_clients=10, **quick))
        assert dct_small.throughput_mops < 0.6 * rc_small.throughput_mops
        dct_large = run_dct_outbound(RawVerbConfig(n_clients=400, **quick))
        rc_large = run_outbound_write(RawVerbConfig(n_clients=400, **quick))
        assert dct_large.throughput_mops > rc_large.throughput_mops


class TestNewerHca:
    def test_larger_caches_delay_but_do_not_remove_the_collapse(self):
        """Paper Section 5.1, citing eRPC: ConnectX-4/5 still lose about
        half their throughput by ~5000 connections."""
        from repro.rdma import NicParams

        cx5 = NicParams(
            conn_cache_entries=4096,
            wqe_cache_entries=2500,
            conn_miss_penalty_ns=250,
            wqe_miss_penalty_ns=80,
        )
        quick = dict(measure_ns=250_000)
        at_400 = run_outbound_write(
            RawVerbConfig(n_clients=400, server_nic_params=cx5, **quick)
        )
        at_5000 = run_outbound_write(
            RawVerbConfig(n_clients=5000, server_nic_params=cx5, **quick)
        )
        default_400 = run_outbound_write(RawVerbConfig(n_clients=400, **quick))
        # The bigger cache rescues the 400-client point entirely...
        assert at_400.throughput_mops > 3 * default_400.throughput_mops
        # ...but by 5000 connections throughput has at least halved.
        assert at_5000.throughput_mops < 0.55 * at_400.throughput_mops
